"""Summary-tree rendering for JSONL traces.

Rebuilds the span tree from a flat trace (span events carry their
slash-joined ``path``), aggregates repeated spans at the same path
(count + total duration), and renders an indented tree with each node's
share of its parent. Also computes **coverage**: the fraction of the
traced wall-clock accounted for by top-level named spans — the number
the acceptance bar for the observability layer is stated in.

Usage::

    python -m repro.obs.report trace.jsonl

or programmatically via :func:`summarize` / :func:`load_events`.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def load_events(path: "str | Path") -> list:
    """Parse a JSONL trace back into its event dicts."""
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


class _Node:
    __slots__ = ("name", "seconds", "calls", "remote", "children")

    def __init__(self, name: str):
        self.name = name
        self.seconds = 0.0
        self.calls = 0
        self.remote = False
        self.children: "dict[str, _Node]" = {}


def build_tree(events: list) -> _Node:
    """Aggregate span events into a tree rooted at a synthetic node.

    The root's ``seconds`` is the trace's total wall-clock (the ``end``
    event), so every top-level span renders with its share of the run.
    Span names may themselves contain ``/`` (e.g. ``row:<table>/<row>``);
    the intermediate *virtual* nodes that creates carry no events of
    their own and inherit the sum of their children.
    """
    root = _Node("")
    for event in events:
        if event.get("type") == "end":
            root.seconds = float(event["dur"])
            root.calls = 1
        if event.get("type") != "span":
            continue
        node = root
        for part in event["path"].split("/"):
            node = node.children.setdefault(part, _Node(part))
        node.seconds += float(event["dur"])
        node.calls += 1
        node.remote = node.remote or bool(event.get("remote"))
    _rollup_virtual(root)
    return root


def _rollup_virtual(node: _Node) -> None:
    """Give event-less intermediate nodes the sum of their children.

    A parent *span*'s duration already contains its children (spans
    nest), so only nodes with no recorded events of their own roll up —
    they exist purely because a span name contained ``/``.
    """
    for child in node.children.values():
        _rollup_virtual(child)
    if node.calls == 0 and node.children:
        children = list(node.children.values())
        node.seconds = sum(c.seconds for c in children)
        node.calls = sum(c.calls for c in children)
        node.remote = all(c.remote for c in children)


def coverage(events: list) -> float:
    """Top-level span seconds / total traced seconds (0 when untimed).

    Remote (worker-side) spans overlap the parent's local spans on the
    wall clock, so only locally-recorded top-level spans count — with a
    single root span around the run this is simply root span / total.
    """
    tree = build_tree(events)
    if tree.seconds <= 0:
        return 0.0
    local = sum(c.seconds for c in tree.children.values() if not c.remote)
    return min(1.0, local / tree.seconds)


def counters(events: list) -> dict:
    """The merged counter values recorded at finalization."""
    for event in events:
        if event.get("type") == "counters":
            return dict(event["values"])
    return {}


def _render_node(node: _Node, parent_seconds: float, depth: int,
                 lines: list, max_depth: int) -> None:
    share = 100.0 * node.seconds / parent_seconds if parent_seconds > 0 else 0.0
    calls = f" x{node.calls}" if node.calls > 1 else ""
    remote = " [worker]" if node.remote else ""
    lines.append(f"{'  ' * depth}{node.name:<{max(40 - 2 * depth, 8)}} "
                 f"{node.seconds:9.3f}s {share:5.1f}%{calls}{remote}")
    if depth + 1 >= max_depth:
        return
    ordered = sorted(node.children.values(), key=lambda c: -c.seconds)
    for child in ordered:
        _render_node(child, node.seconds or parent_seconds, depth + 1,
                     lines, max_depth)


def render_tree(events: list, max_depth: int = 6) -> str:
    """The summary tree as printable text."""
    tree = build_tree(events)
    name = next((e.get("name", "run") for e in events
                 if e.get("type") == "begin"), "run")
    lines = [f"trace {name!r}: {tree.seconds:.3f}s wall, "
             f"{coverage(events):.1%} covered by top-level spans"]
    for child in sorted(tree.children.values(), key=lambda c: -c.seconds):
        _render_node(child, tree.seconds, 1, lines, max_depth)
    values = counters(events)
    if values:
        lines.append("counters:")
        width = max(len(k) for k in values)
        for key in sorted(values):
            value = values[key]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {key:<{width}}  {rendered}")
    return "\n".join(lines)


def summarize(path: "str | Path", max_depth: int = 6) -> str:
    """Load a trace file and render its summary tree."""
    return render_tree(load_events(path), max_depth=max_depth)


def main(argv: "list | None" = None) -> int:
    """``python -m repro.obs.report <trace.jsonl> [max_depth]``."""
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__.strip().splitlines()[0])
        print("usage: python -m repro.obs.report <trace.jsonl> [max_depth]")
        return 0 if argv else 2
    max_depth = int(argv[1]) if len(argv) > 1 else 6
    try:
        print(summarize(argv[0], max_depth=max_depth))
    except BrokenPipeError:  # `... | head` closed the pipe: not an error
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
