"""Saving and loading pre-trained models.

A fitted :class:`~repro.plm.model.PretrainedLM` serializes to a single
``.npz`` file: the parameter arrays (in ``Module.parameters()`` order), the
vocabulary tokens, counts, and the config fields — enough to rebuild the
model bit-identically in another process, skipping pre-training.

The archive records its compute dtype explicitly (``meta["dtype"]``), and
:func:`load_plm` rebuilds the encoder *under that dtype* regardless of the
process-wide default (:func:`repro.nn.tensor.get_default_dtype`). A
float32-trained model therefore loads bit-exact in a float64-default
process and vice versa — ``Module.load_state_dict`` casts checkpoints to
the receiving parameters' dtype, so the parameters must be created at the
archive's dtype first.

Corrupt or truncated archives raise
:class:`~repro.core.exceptions.ArtifactError` naming the file, never a
bare numpy/zipfile/JSON error.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np

from repro.core.exceptions import ArtifactError
from repro.nn.tensor import default_dtype
from repro.plm.config import PLMConfig
from repro.plm.encoder import TransformerEncoder
from repro.plm.model import PretrainedLM
from repro.text.vocabulary import Vocabulary


def save_plm(plm: PretrainedLM, path: "str | Path") -> Path:
    """Serialize ``plm`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    encoder = plm.encoder
    vocab = encoder.vocabulary
    tokens = [vocab.token(i) for i in range(len(vocab))]
    counts = [vocab.frequency(t) for t in tokens]
    state = encoder.state_dict()
    payload = {f"param_{i}": array for i, array in enumerate(state)}
    payload["meta"] = np.asarray(
        json.dumps(
            {
                "config": dict(encoder.config.__dict__),
                "tokens": tokens,
                "counts": counts,
                "n_params": len(state),
                # The compute dtype the parameters were trained at; load
                # rebuilds the encoder under it for bit-exact round-trips.
                "dtype": str(np.dtype(state[0].dtype)) if state else "float32",
            }
        ),
        dtype=np.str_,
    )
    np.savez_compressed(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_plm(path: "str | Path") -> PretrainedLM:
    """Rebuild a :class:`PretrainedLM` saved by :func:`save_plm`.

    Raises :class:`ArtifactError` (naming ``path``) when the archive is
    corrupt, truncated, or missing expected entries.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            arrays = [data[f"param_{i}"] for i in range(meta["n_params"])]
    except FileNotFoundError:
        raise ArtifactError(f"PLM archive {path} does not exist") from None
    except (zipfile.BadZipFile, OSError, ValueError, KeyError,
            json.JSONDecodeError) as exc:
        raise ArtifactError(
            f"PLM archive {path} is corrupt or truncated: {exc}"
        ) from exc
    config = PLMConfig(**meta["config"])
    n_specials = len(Vocabulary().specials)
    vocab = Vocabulary()
    for token, count in zip(meta["tokens"][n_specials:],
                            meta["counts"][n_specials:]):
        vocab.add(token, count=int(count))
    # Pre-dtype-field archives fall back to the stored arrays' dtype (npz
    # preserves it); either way the encoder is built at the archive dtype
    # so load_state_dict's cast is the identity.
    dtype = meta.get("dtype") or (str(arrays[0].dtype) if arrays else "float32")
    rng = np.random.default_rng(0)  # weights are overwritten below
    try:
        with default_dtype(dtype):
            encoder = TransformerEncoder(vocab, config, rng)
            encoder.load_state_dict(arrays)
    except ValueError as exc:
        raise ArtifactError(
            f"PLM archive {path} does not match its manifest: {exc}"
        ) from exc
    # The encode cache is content-addressed (weights digest), so a model
    # round-tripped through disk shares cached encodings with its source.
    from repro.plm.provider import shared_encode_cache

    return PretrainedLM(encoder, enc_cache=shared_encode_cache())
