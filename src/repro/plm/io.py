"""Saving and loading pre-trained models.

A fitted :class:`~repro.plm.model.PretrainedLM` serializes to a single
``.npz`` file: the parameter arrays (in ``Module.parameters()`` order), the
vocabulary tokens, counts, and the config fields — enough to rebuild the
model bit-identically in another process, skipping pre-training.

The archive records its compute dtype explicitly (``meta["dtype"]``), and
:func:`load_plm` rebuilds the encoder *under that dtype* regardless of the
process-wide default (:func:`repro.nn.tensor.get_default_dtype`). A
float32-trained model therefore loads bit-exact in a float64-default
process and vice versa — ``Module.load_state_dict`` casts checkpoints to
the receiving parameters' dtype, so the parameters must be created at the
archive's dtype first.

Predict-only archives can be **quantized** (``quantize="int8"`` or
``"float16"``). int8 stores every matrix-shaped parameter as int8 codes
plus per-row float32 absmax scales (``scale_<i>``); vectors (biases,
norm gains) stay at full precision — they are tiny and their error would
be amplified by every token. float16 halves every float array. Both
variants dequantize back to the archive's compute dtype at load, and the
loaded engine defaults to the packed predict-only forward
(:mod:`repro.plm.infer`) — quantization already forfeited bit-exactness
with the trainer, so the faster float32-ulp kernel costs nothing
further. Dequantization is deterministic, so a quantized archive loads
bit-identically across processes and hosts.

Corrupt or truncated archives raise
:class:`~repro.core.exceptions.ArtifactError` naming the file, never a
bare numpy/zipfile/JSON error.
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core import env as _env
from repro.core.exceptions import ArtifactError
from repro.nn.tensor import default_dtype
from repro.plm.config import PLMConfig
from repro.plm.encoder import TransformerEncoder
from repro.plm.engine import EngineConfig
from repro.plm.model import PretrainedLM
from repro.text.vocabulary import Vocabulary

#: Supported ``quantize=`` values for :func:`save_plm` / export_artifact.
QUANTIZE_MODES = ("int8", "float16")


def quantize_int8(array: np.ndarray) -> tuple:
    """Per-row absmax int8 codes and float32 scales for a float matrix.

    The scale keeps the row's leading axis with trailing singleton dims,
    so ``codes * scales`` broadcasts back to ``array.shape``. All-zero
    rows get scale 1.0 (codes are already 0), avoiding 0/0.
    """
    reduce_axes = tuple(range(1, array.ndim))
    absmax = np.abs(array).max(axis=reduce_axes, keepdims=True)
    scales = (absmax / 127.0).astype(np.float32)
    scales[absmax == 0.0] = np.float32(1.0)
    codes = np.rint(array / scales).astype(np.int8)
    return codes, scales


def dequantize_int8(codes: np.ndarray, scales: np.ndarray,
                    dtype: str) -> np.ndarray:
    """Reconstruct the float matrix from int8 codes and per-row scales."""
    return (codes.astype(dtype) * scales.astype(dtype))


def save_plm(plm: PretrainedLM, path: "str | Path",
             quantize: "str | None" = None) -> Path:
    """Serialize ``plm`` to ``path`` (``.npz`` appended if missing).

    ``quantize`` selects a predict-only weight format (see module
    docstring); ``None`` keeps the lossless full-precision archive.
    """
    if quantize is not None and quantize not in QUANTIZE_MODES:
        raise ArtifactError(
            f"unknown quantize mode {quantize!r} "
            f"(expected one of {QUANTIZE_MODES})"
        )
    path = Path(path)
    encoder = plm.encoder
    vocab = encoder.vocabulary
    tokens = [vocab.token(i) for i in range(len(vocab))]
    counts = [vocab.frequency(t) for t in tokens]
    state = encoder.state_dict()
    payload = {}
    for i, array in enumerate(state):
        if quantize == "int8" and array.ndim >= 2:
            codes, scales = quantize_int8(array)
            payload[f"param_{i}"] = codes
            payload[f"scale_{i}"] = scales
        elif quantize == "float16":
            payload[f"param_{i}"] = array.astype(np.float16)
        else:
            payload[f"param_{i}"] = array
    payload["meta"] = np.asarray(
        json.dumps(
            {
                "config": dict(encoder.config.__dict__),
                "tokens": tokens,
                "counts": counts,
                "n_params": len(state),
                # The compute dtype the parameters were trained at; load
                # rebuilds the encoder under it for bit-exact round-trips
                # (quantized variants dequantize back to this dtype).
                "dtype": str(np.dtype(state[0].dtype)) if state else "float32",
                "quantize": quantize,
            }
        ),
        dtype=np.str_,
    )
    np.savez_compressed(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def read_plm_arrays(path: "str | Path") -> tuple:
    """Read an archive's fully-dequantized parameter arrays plus its meta.

    Returns ``(arrays, meta)`` where ``arrays`` follows the
    ``Module.parameters()`` order and ``meta`` is the archive's JSON meta
    with ``dtype`` resolved (pre-dtype-field archives fall back to the
    stored arrays' dtype — npz preserves it). Quantized archives are
    dequantized deterministically here, so the returned arrays are always
    the compute-dtype weights that :func:`build_plm` consumes.

    This is the half of :func:`load_plm` that touches disk; the replica
    pool calls it once per host, publishes the arrays into shared memory,
    and workers rebuild encoders over the shared views with
    :func:`build_plm`.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            quantize = meta.get("quantize")
            dtype = meta.get("dtype") or "float32"
            arrays = []
            for i in range(meta["n_params"]):
                array = data[f"param_{i}"]
                if quantize == "int8" and array.dtype == np.int8:
                    array = dequantize_int8(array, data[f"scale_{i}"], dtype)
                elif quantize == "float16":
                    array = array.astype(dtype)
                arrays.append(array)
    except FileNotFoundError:
        raise ArtifactError(f"PLM archive {path} does not exist") from None
    except (zipfile.BadZipFile, OSError, ValueError, KeyError,
            json.JSONDecodeError) as exc:
        raise ArtifactError(
            f"PLM archive {path} is corrupt or truncated: {exc}"
        ) from exc
    if not meta.get("dtype"):
        meta["dtype"] = str(arrays[0].dtype) if arrays else "float32"
    return arrays, meta


def build_plm(arrays: list, meta: dict, *, copy: bool = True) -> PretrainedLM:
    """Rebuild a :class:`PretrainedLM` from :func:`read_plm_arrays` output.

    With ``copy=True`` (the default) the arrays flow through
    ``Module.load_state_dict``, which casts into freshly-owned parameter
    buffers. With ``copy=False`` the parameter ``data`` is *aliased* to
    the given arrays — zero-copy, which is what lets N pool replicas map
    one shared-memory weight set — so each array must already match the
    parameter's shape and the archive dtype exactly (read-only views are
    fine: inference never writes weights).
    """
    config = PLMConfig(**meta["config"])
    n_specials = len(Vocabulary().specials)
    vocab = Vocabulary()
    for token, count in zip(meta["tokens"][n_specials:],
                            meta["counts"][n_specials:]):
        vocab.add(token, count=int(count))
    dtype = meta.get("dtype") or "float32"
    rng = np.random.default_rng(0)  # weights are overwritten below
    try:
        with default_dtype(dtype):
            encoder = TransformerEncoder(vocab, config, rng)
            if copy:
                encoder.load_state_dict(arrays)
            else:
                params = encoder.parameters()
                if len(arrays) != len(params):
                    raise ValueError(
                        f"expected {len(params)} parameter arrays, "
                        f"got {len(arrays)}"
                    )
                for param, array in zip(params, arrays):
                    if param.data.shape != array.shape:
                        raise ValueError(
                            f"shape mismatch: parameter {param.data.shape} "
                            f"vs array {array.shape}"
                        )
                    if param.data.dtype != array.dtype:
                        raise ValueError(
                            f"dtype mismatch: parameter {param.data.dtype} "
                            f"vs array {array.dtype}"
                        )
                    param.data = array
    except ValueError as exc:
        raise ArtifactError(
            f"PLM state does not match its manifest: {exc}"
        ) from exc
    # The encode cache is content-addressed (weights digest), so a model
    # round-tripped through disk shares cached encodings with its source.
    from repro.plm.provider import shared_encode_cache

    engine_config = EngineConfig.from_env()
    if meta.get("quantize") is not None and _env.engine_fused_infer() is None:
        # Quantized archives are predict-only and already non-bit-exact
        # with the trainer, so they default to the packed fused forward.
        # An explicit REPRO_ENGINE_FUSED_INFER=0 wins (handled above:
        # from_env folds a forced value in; None means "defaulted").
        engine_config = replace(engine_config, fused_infer=True)
    return PretrainedLM(encoder, enc_cache=shared_encode_cache(),
                        engine_config=engine_config)


def load_plm(path: "str | Path") -> PretrainedLM:
    """Rebuild a :class:`PretrainedLM` saved by :func:`save_plm`.

    Raises :class:`ArtifactError` (naming ``path``) when the archive is
    corrupt, truncated, or missing expected entries.
    """
    path = Path(path)
    arrays, meta = read_plm_arrays(path)
    try:
        return build_plm(arrays, meta)
    except ArtifactError as exc:
        raise ArtifactError(
            f"PLM archive {path} does not match its manifest: {exc.__cause__}"
        ) from exc
