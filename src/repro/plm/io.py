"""Saving and loading pre-trained models.

A fitted :class:`~repro.plm.model.PretrainedLM` serializes to a single
``.npz`` file: the parameter arrays (in ``Module.parameters()`` order), the
vocabulary tokens, counts, and the config fields — enough to rebuild the
model bit-identically in another process, skipping pre-training.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.plm.config import PLMConfig
from repro.plm.encoder import TransformerEncoder
from repro.plm.model import PretrainedLM
from repro.text.vocabulary import Vocabulary


def save_plm(plm: PretrainedLM, path: "str | Path") -> Path:
    """Serialize ``plm`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    encoder = plm.encoder
    vocab = encoder.vocabulary
    tokens = [vocab.token(i) for i in range(len(vocab))]
    counts = [vocab.frequency(t) for t in tokens]
    payload = {
        f"param_{i}": array for i, array in enumerate(encoder.state_dict())
    }
    payload["meta"] = np.asarray(
        json.dumps(
            {
                "config": dict(encoder.config.__dict__),
                "tokens": tokens,
                "counts": counts,
                "n_params": len(encoder.state_dict()),
            }
        ),
        dtype=np.str_,
    )
    np.savez_compressed(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_plm(path: "str | Path") -> PretrainedLM:
    """Rebuild a :class:`PretrainedLM` saved by :func:`save_plm`."""
    with np.load(Path(path), allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        arrays = [data[f"param_{i}"] for i in range(meta["n_params"])]
    config = PLMConfig(**meta["config"])
    n_specials = len(Vocabulary().specials)
    vocab = Vocabulary()
    for token, count in zip(meta["tokens"][n_specials:],
                            meta["counts"][n_specials:]):
        vocab.add(token, count=int(count))
    rng = np.random.default_rng(0)  # weights are overwritten below
    encoder = TransformerEncoder(vocab, config, rng)
    encoder.load_state_dict(arrays)
    # The encode cache is content-addressed (weights digest), so a model
    # round-tripped through disk shares cached encodings with its source.
    from repro.plm.provider import shared_encode_cache

    return PretrainedLM(encoder, enc_cache=shared_encode_cache())
