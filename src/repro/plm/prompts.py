"""Prompt templates and verbalizers for prompt-based classification."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.types import LabelSet
from repro.text.vocabulary import MASK


@dataclass(frozen=True)
class PromptTemplate:
    """A cloze template wrapped around a document.

    ``render`` produces ``doc_tokens[:budget] + infix + [MASK | verbalized]``.
    The default template mirrors the tutorial's example:
    ``<doc> this article is about [MASK]``.
    """

    infix: tuple = ("this", "article", "is", "about")

    def render_masked(self, doc_tokens: list, max_len: int) -> list:
        """Template with a ``[MASK]`` slot, truncating the document to fit."""
        budget = max(1, max_len - len(self.infix) - 1)
        return list(doc_tokens[:budget]) + list(self.infix) + [MASK]

    def render_filled(self, doc_tokens: list, fill_tokens: list, max_len: int) -> tuple:
        """Template with the verbalizer filled in.

        Returns (tokens, position of the first fill token) for
        replaced-token-detection scoring.
        """
        budget = max(1, max_len - len(self.infix) - len(fill_tokens))
        prefix = list(doc_tokens[:budget]) + list(self.infix)
        return prefix + list(fill_tokens), len(prefix)


@dataclass(frozen=True)
class Verbalizer:
    """Maps labels to the token(s) standing in for them in a prompt."""

    label_set: LabelSet
    tokens_of: dict = field(default_factory=dict)

    @classmethod
    def from_label_names(cls, label_set: LabelSet) -> "Verbalizer":
        """Default verbalizer: each label's surface-name tokens."""
        return cls(
            label_set=label_set,
            tokens_of={l: tuple(label_set.name_tokens(l)) for l in label_set},
        )

    def tokens(self, label: str) -> list:
        """All verbalizer tokens for ``label``."""
        return list(self.tokens_of[label])

    def head_token(self, label: str) -> str:
        """The single token scored for this label in the MLM slot."""
        return self.tokens_of[label][0]
