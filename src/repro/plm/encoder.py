"""Transformer encoder with a tied masked-LM head."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Embedding, LayerNorm, Linear, Module, TransformerBlock
from repro.nn.tensor import Tensor, get_default_dtype
from repro.plm.config import PLMConfig
from repro.text.vocabulary import Vocabulary


class TransformerEncoder(Module):
    """Token + position embeddings, pre-norm blocks, tied MLM head.

    ``forward`` returns final hidden states (B, T, D); ``mlm_logits``
    projects them onto the vocabulary with weights tied to the token
    embedding table (plus a learned output bias), as in BERT.
    """

    def __init__(self, vocabulary: Vocabulary, config: PLMConfig,
                 rng: np.random.Generator):
        super().__init__()
        self.vocabulary = vocabulary
        self.config = config
        self.token_embedding = Embedding(len(vocabulary), config.dim, rng)
        self.position_embedding = Embedding(config.max_len, config.dim, rng)
        self.blocks = [
            TransformerBlock(config.dim, config.n_heads, config.ff_hidden, rng,
                             dropout=config.dropout)
            for _ in range(config.n_layers)
        ]
        self.final_norm = LayerNorm(config.dim)
        self.mlm_transform = Linear(config.dim, config.dim, rng)
        self.mlm_bias = Tensor(np.zeros(len(vocabulary), dtype=get_default_dtype()),
                               requires_grad=True)

    def forward(self, ids: np.ndarray, pad_mask: "np.ndarray | None" = None) -> Tensor:
        """Hidden states for int id batch (B, T)."""
        ids = np.asarray(ids, dtype=np.int64)
        batch, seq = ids.shape
        if seq > self.config.max_len:
            raise ValueError(f"sequence length {seq} exceeds max_len {self.config.max_len}")
        # Position rows are shared across the batch: look them up once as
        # (1, T, D) and let broadcasting add them — the backward then sums
        # over the batch axis instead of scatter-adding B*T rows.
        positions = np.arange(seq)[None, :]
        x = self.token_embedding(ids) + self.position_embedding(positions)
        for block in self.blocks:
            x = block(x, pad_mask=pad_mask)
        return self.final_norm(x)

    def mlm_logits(self, hidden: Tensor) -> Tensor:
        """Vocabulary logits from hidden states (tied output embeddings)."""
        transformed = self.mlm_transform(hidden).gelu()
        return transformed @ self.token_embedding.weight.swapaxes(0, 1) + self.mlm_bias

    def attention_maps(self) -> list:
        """Per-layer attention probabilities of the most recent forward.

        Entries are None unless the forward ran with attention storage
        enabled (see :meth:`set_store_attention`).
        """
        return [block.attn.last_attention for block in self.blocks]

    def set_store_attention(self, flag: bool) -> None:
        """Toggle retention of per-layer attention maps on future forwards."""
        for block in self.blocks:
            block.attn.store_attention = flag
            if not flag:
                block.attn.last_attention = None


class BatchPlan:
    """Precomputed padding plan for repeated minibatch slicing.

    Training loops that draw many minibatches from one fixed sequence set
    (``TokenClassifier.fit`` epochs, the MLM pretrainer, the ELECTRA head)
    previously re-ran :func:`pad_batch` — a Python loop over documents —
    for every batch. A plan pads the whole corpus **once** into a single
    (N, T) id matrix plus a length vector, and ``gather`` then assembles
    any minibatch with two vectorized numpy ops into reusable id/mask
    buffers.

    ``gather`` returns *views into internal buffers* that are overwritten
    by the next call — consume (or copy) them before gathering again. The
    produced (ids, pad_mask) pair is element-identical to
    ``pad_batch([sequences[i] for i in indices], pad_id, max_len)``.
    """

    def __init__(self, id_lists: list, pad_id: int, max_len: int):
        if not id_lists:
            raise ValueError("empty sequence set")
        self.pad_id = int(pad_id)
        self.max_len = int(max_len)
        width = min(max(len(ids) for ids in id_lists), max_len)
        width = max(width, 1)
        self.width = width
        self.lengths = np.array([min(len(ids), width) for ids in id_lists],
                                dtype=np.int64)
        self.ids = np.full((len(id_lists), width), self.pad_id, dtype=np.int64)
        for i, ids in enumerate(id_lists):
            n = self.lengths[i]
            self.ids[i, :n] = np.asarray(ids, dtype=np.int64)[:n]
        self._positions = np.arange(width, dtype=np.int64)
        self._ids_buf = np.empty((0, width), dtype=np.int64)
        self._mask_buf = np.empty((0, width), dtype=bool)

    def __len__(self) -> int:
        return self.ids.shape[0]

    def gather(self, indices) -> tuple:
        """(ids, pad_mask) for ``indices`` — buffer views, trimmed to the
        batch's own max length."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            raise ValueError("empty batch")
        lens = self.lengths[idx]
        seq = max(int(lens.max()), 1)
        if self._ids_buf.shape[0] < idx.size:
            self._ids_buf = np.empty((idx.size, self.width), dtype=np.int64)
            self._mask_buf = np.empty((idx.size, self.width), dtype=bool)
        ids = self._ids_buf[: idx.size, :seq]
        mask = self._mask_buf[: idx.size, :seq]
        np.take(self.ids[:, :seq], idx, axis=0, out=ids)
        np.greater_equal(self._positions[:seq][None, :], lens[:, None], out=mask)
        return ids, mask


def pad_batch(id_lists: list, pad_id: int, max_len: int) -> tuple:
    """Pad/truncate id lists to a (B, T) batch plus a True-at-padding mask."""
    if not id_lists:
        raise ValueError("empty batch")
    seq = min(max(len(ids) for ids in id_lists), max_len)
    seq = max(seq, 1)
    batch = np.full((len(id_lists), seq), pad_id, dtype=np.int64)
    mask = np.ones((len(id_lists), seq), dtype=bool)
    for i, ids in enumerate(id_lists):
        ids = list(ids)[:seq]
        batch[i, : len(ids)] = ids
        mask[i, : len(ids)] = False
    return batch, mask
