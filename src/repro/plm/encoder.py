"""Transformer encoder with a tied masked-LM head."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Embedding, LayerNorm, Linear, Module, TransformerBlock
from repro.nn.tensor import Tensor
from repro.plm.config import PLMConfig
from repro.text.vocabulary import Vocabulary


class TransformerEncoder(Module):
    """Token + position embeddings, pre-norm blocks, tied MLM head.

    ``forward`` returns final hidden states (B, T, D); ``mlm_logits``
    projects them onto the vocabulary with weights tied to the token
    embedding table (plus a learned output bias), as in BERT.
    """

    def __init__(self, vocabulary: Vocabulary, config: PLMConfig,
                 rng: np.random.Generator):
        super().__init__()
        self.vocabulary = vocabulary
        self.config = config
        self.token_embedding = Embedding(len(vocabulary), config.dim, rng)
        self.position_embedding = Embedding(config.max_len, config.dim, rng)
        self.blocks = [
            TransformerBlock(config.dim, config.n_heads, config.ff_hidden, rng,
                             dropout=config.dropout)
            for _ in range(config.n_layers)
        ]
        self.final_norm = LayerNorm(config.dim)
        self.mlm_transform = Linear(config.dim, config.dim, rng)
        self.mlm_bias = Tensor(np.zeros(len(vocabulary)), requires_grad=True)

    def forward(self, ids: np.ndarray, pad_mask: "np.ndarray | None" = None) -> Tensor:
        """Hidden states for int id batch (B, T)."""
        ids = np.asarray(ids, dtype=np.int64)
        batch, seq = ids.shape
        if seq > self.config.max_len:
            raise ValueError(f"sequence length {seq} exceeds max_len {self.config.max_len}")
        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        x = self.token_embedding(ids) + self.position_embedding(positions)
        for block in self.blocks:
            x = block(x, pad_mask=pad_mask)
        return self.final_norm(x)

    def mlm_logits(self, hidden: Tensor) -> Tensor:
        """Vocabulary logits from hidden states (tied output embeddings)."""
        transformed = self.mlm_transform(hidden).gelu()
        return transformed @ self.token_embedding.weight.swapaxes(0, 1) + self.mlm_bias

    def attention_maps(self) -> list:
        """Per-layer attention probabilities of the most recent forward.

        Entries are None unless the forward ran with attention storage
        enabled (see :meth:`set_store_attention`).
        """
        return [block.attn.last_attention for block in self.blocks]

    def set_store_attention(self, flag: bool) -> None:
        """Toggle retention of per-layer attention maps on future forwards."""
        for block in self.blocks:
            block.attn.store_attention = flag
            if not flag:
                block.attn.last_attention = None


def pad_batch(id_lists: list, pad_id: int, max_len: int) -> tuple:
    """Pad/truncate id lists to a (B, T) batch plus a True-at-padding mask."""
    if not id_lists:
        raise ValueError("empty batch")
    seq = min(max(len(ids) for ids in id_lists), max_len)
    seq = max(seq, 1)
    batch = np.full((len(id_lists), seq), pad_id, dtype=np.int64)
    mask = np.ones((len(id_lists), seq), dtype=bool)
    for i, ids in enumerate(id_lists):
        ids = list(ids)[:seq]
        batch[i, : len(ids)] = ids
        mask[i, : len(ids)] = False
    return batch, mask
