"""Pre-trained language model substrate (pure numpy).

A small transformer encoder pre-trained in-process on a synthetic
general-knowledge corpus. It exposes the four interfaces the surveyed
methods consume from BERT-family models:

- contextualized token representations (:meth:`PretrainedLM.encode_tokens`)
- masked-token ranking (:meth:`PretrainedLM.predict_masked`)
- sequence-pair relevance (:class:`~repro.plm.nli.RelevanceModel`)
- replaced-token detection (:class:`~repro.plm.electra.ElectraDiscriminator`)
"""

from repro.plm.config import PLMConfig, tiny_config
from repro.plm.electra import ElectraDiscriminator
from repro.plm.encoder import TransformerEncoder
from repro.plm.engine import EngineConfig
from repro.plm.io import load_plm, save_plm
from repro.plm.model import PretrainedLM
from repro.plm.nli import RelevanceModel
from repro.plm.prompts import PromptTemplate, Verbalizer
from repro.plm.provider import (
    clear_cache,
    get_electra,
    get_pretrained_lm,
    get_relevance_model,
)

__all__ = [
    "PLMConfig",
    "tiny_config",
    "TransformerEncoder",
    "EngineConfig",
    "PretrainedLM",
    "RelevanceModel",
    "ElectraDiscriminator",
    "PromptTemplate",
    "Verbalizer",
    "get_pretrained_lm",
    "get_relevance_model",
    "get_electra",
    "clear_cache",
    "save_plm",
    "load_plm",
]
