"""ELECTRA-style replaced-token-detection head.

A bilinear compatibility scorer between a token's contextual hidden state
and its static embedding: ``score = h_t . (W e_t) + b``. High scores mean
"this token is original (fits its context)". Trained on corrupted copies of
the pre-training corpus with the encoder frozen — a scale-appropriate
stand-in for ELECTRA's jointly-trained discriminator that preserves the
interface PromptClass consumes (per-token originality probabilities).
"""

from __future__ import annotations

import numpy as np

from repro.core.seeding import ensure_rng
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, get_default_dtype, inference_mode
from repro.plm import engine
from repro.plm.encoder import BatchPlan
from repro.plm.model import PretrainedLM


class ElectraDiscriminator:
    """Replaced-token detector over a frozen pre-trained encoder."""

    def __init__(self, plm: PretrainedLM, seed: "int | np.random.Generator" = 0):
        self.plm = plm
        rng = ensure_rng(seed)
        dim = plm.dim
        limit = np.sqrt(6.0 / (2 * dim))
        dtype = get_default_dtype()
        self.weight = Tensor(rng.uniform(-limit, limit, size=(dim, dim)),
                             requires_grad=True, dtype=dtype)
        self.bias = Tensor(np.zeros(1, dtype=dtype), requires_grad=True)
        self._trained = False

    def _hidden_and_embeddings(self, ids: np.ndarray, pad_mask: np.ndarray) -> tuple:
        # The encoder is frozen even during head training: no graph needed.
        with inference_mode():
            hidden = self.plm.encoder(ids, pad_mask=pad_mask).data
        emb = self.plm.encoder.token_embedding.weight.data[ids]
        return hidden, emb

    def _logits(self, hidden: np.ndarray, emb: np.ndarray) -> Tensor:
        projected = Tensor(emb) @ self.weight  # (B, T, D)
        return (Tensor(hidden) * projected).sum(axis=-1) + self.bias

    def train(self, token_lists: list, steps: int = 120, batch_size: int = 32,
              corrupt_prob: float = 0.15, lr: float = 5e-3,
              seed: "int | np.random.Generator" = 0) -> "ElectraDiscriminator":
        """Fit the detector on corrupted copies of ``token_lists``."""
        rng = ensure_rng(seed)
        vocab = self.plm.vocabulary
        sequences = [vocab.encode(t)[: self.plm.max_len] for t in token_lists if t]
        noise = vocab.unigram_distribution()
        optimizer = Adam([self.weight, self.bias], lr=lr)
        plan = BatchPlan(sequences, vocab.pad_id, self.plm.max_len)
        dtype = self.weight.data.dtype
        for _ in range(steps):
            idx = rng.integers(0, len(sequences), size=batch_size)
            ids, pad_mask = plan.gather(idx)
            corrupted = ids.copy()
            replace = (~pad_mask) & (rng.random(ids.shape) < corrupt_prob)
            if replace.any():
                corrupted[replace] = rng.choice(len(noise), size=int(replace.sum()),
                                                p=noise)
            targets = np.where(replace, 0.0, 1.0).astype(dtype)
            weights = (~pad_mask).astype(dtype)
            hidden, emb = self._hidden_and_embeddings(corrupted, pad_mask)
            logits = self._logits(hidden, emb)
            loss = binary_cross_entropy_with_logits(logits, targets, weights=weights)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        self._trained = True
        return self

    def originality(self, token_lists: list) -> list:
        """Per-token P(original | context) for each document.

        Runs on the PLM's inference engine: length-bucketed batches, no
        autograd graph.
        """
        vocab = self.plm.vocabulary
        sequences = [vocab.encode(t)[: self.plm.max_len] for t in token_lists]
        safe = [s if len(s) else np.array([vocab.unk_id], dtype=np.int64)
                for s in sequences]
        out: list = [None] * len(safe)
        table = self.plm.encoder.token_embedding.weight.data

        def score(indices, ids, pad_mask, hidden):
            logits = self._logits(hidden.data, table[ids]).data
            probs = 1.0 / (1.0 + np.exp(-logits))
            for row, i in enumerate(indices):
                out[i] = probs[row, : len(safe[i])].copy()

        engine.run_encoder(self.plm.encoder, safe, vocab.pad_id,
                           self.plm.engine, score)
        return out

    def token_originality(self, tokens: list, position: int) -> float:
        """P(original) of the token at ``position``."""
        scores = self.originality([tokens])[0]
        return float(scores[min(position, len(scores) - 1)])
