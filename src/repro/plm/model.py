"""User-facing facade over the pre-trained transformer.

All read paths run through the inference engine
(:mod:`repro.plm.engine`): gradient-free, length-bucketed, and — when a
cache is wired in (:mod:`repro.core.enc_cache`) — sharing per-document
hidden states across every method that touches the same corpus.
"""

from __future__ import annotations

import numpy as np

from repro.core.enc_cache import EncodeCache, array_digest, doc_key
from repro.nn.functional import l2_normalize, masked_mean_pool
from repro.nn.tensor import Tensor
from repro.plm import engine
from repro.plm.encoder import TransformerEncoder, pad_batch
from repro.plm.engine import EngineConfig
from repro.text.vocabulary import MASK, Vocabulary


class PretrainedLM:
    """A pre-trained language model exposing BERT-style interfaces.

    Wraps a :class:`TransformerEncoder` with batched encoding, pooled
    document embeddings, masked-token ranking, and attention access.

    Parameters
    ----------
    encoder:
        The (frozen) pre-trained encoder.
    batch_size:
        Baseline sequences per batch; the engine's token budget scales the
        effective batch up for short documents.
    enc_cache:
        Optional :class:`~repro.core.enc_cache.EncodeCache` shared across
        models — the provider wires in a process-wide instance so the
        second method to encode a corpus gets its hidden states for free.
    engine_config:
        Inference-engine knobs; defaults honour the ``REPRO_ENGINE_*``
        environment variables.
    """

    def __init__(self, encoder: TransformerEncoder, batch_size: int = 32,
                 enc_cache: "EncodeCache | None" = None,
                 engine_config: "EngineConfig | None" = None):
        self.encoder = encoder
        self.batch_size = batch_size
        self.engine = engine_config or EngineConfig.from_env(batch_size=batch_size)
        self.enc_cache = enc_cache
        self._cache_namespace: "str | None" = None
        self.encoder.eval()

    @property
    def vocabulary(self) -> Vocabulary:
        return self.encoder.vocabulary

    @property
    def dim(self) -> int:
        return self.encoder.config.dim

    @property
    def max_len(self) -> int:
        return self.encoder.config.max_len

    @property
    def cache_namespace(self) -> str:
        """Content identity of this model for the encode cache.

        A digest of the config plus every parameter array, computed lazily
        on first cached encode. Read paths assume frozen weights (true for
        everything built on this facade); anything that re-trains the
        encoder must construct a fresh ``PretrainedLM``.
        """
        if self._cache_namespace is None:
            self._cache_namespace = array_digest(
                [p.data for p in self.encoder.parameters()],
                extra=repr(self.encoder.config.cache_key()),
            )
        return self._cache_namespace

    # -- encoding -----------------------------------------------------------
    def _encode_ids(self, token_lists: list) -> tuple:
        """Hidden states plus encoded ids, one encode pass, cache-aware.

        Returns ``(hidden_list, ids_list)``: per-document (T_i, dim)
        contextual vectors and the (truncated) id arrays they were encoded
        from. Empty documents are substituted with a single ``[UNK]`` for
        the forward (their ``ids`` entry stays empty, which downstream
        pooling uses to detect the fallback case). Returned hidden arrays
        may be cache-owned — callers that hand them out copy first.
        """
        vocab = self.vocabulary
        ids_list = [vocab.encode(t)[: self.max_len] for t in token_lists]
        safe = [s if len(s) else np.array([vocab.unk_id], dtype=np.int64)
                for s in ids_list]
        hidden: list = [None] * len(safe)
        cache = self.enc_cache if self.engine.cache else None
        keys: "list | None" = None
        misses = list(range(len(safe)))
        if cache is not None:
            namespace = self.cache_namespace
            keys = [doc_key(s) for s in safe]
            misses = []
            first_by_key: dict = {}
            for i, key in enumerate(keys):
                found = cache.get(namespace, key)
                if found is not None:
                    hidden[i] = found
                elif key in first_by_key:
                    pass  # duplicate within this call: encoded once below
                else:
                    first_by_key[key] = i
                    misses.append(i)
        if misses:
            encoded = engine.encode_hidden(
                self.encoder, [safe[i] for i in misses], vocab.pad_id, self.engine
            )
            for i, states in zip(misses, encoded):
                hidden[i] = states
                if cache is not None:
                    cache.put(self.cache_namespace, keys[i], states)
        if cache is not None:
            for i, key in enumerate(keys):
                if hidden[i] is None:  # duplicate: share the first copy's states
                    hidden[i] = hidden[first_by_key[key]]
        return hidden, ids_list

    def encode_tokens(self, token_lists: list) -> list:
        """Contextualized vectors per document: list of (T_i, dim) arrays.

        Documents longer than ``max_len`` are truncated (documented
        substitution for sliding-window encoding).
        """
        hidden, _ = self._encode_ids(token_lists)
        if self.enc_cache is not None and self.engine.cache:
            return [states.copy() for states in hidden]  # protect the cache
        return hidden

    def doc_embeddings(self, token_lists: list, normalize: bool = True) -> np.ndarray:
        """Average-pooled contextual document embeddings (N, dim).

        Out-of-vocabulary positions are excluded from the pool (their UNK
        vectors carry no content); fully-OOV documents fall back to the
        plain mean. Ids come straight from the encode pass — documents are
        encoded exactly once.
        """
        unk = self.vocabulary.unk_id
        hidden, ids_list = self._encode_ids(token_lists)
        rows = [masked_mean_pool(states, ids != unk)
                for states, ids in zip(hidden, ids_list)]
        out = np.stack(rows)
        return l2_normalize(out) if normalize else out

    def encode_with_attention(self, tokens: list) -> tuple:
        """(hidden (T, dim), last-layer attention (heads, T, T)) for one doc.

        Attention storage is off by default; this temporarily enables it
        for the single forward.
        """
        vocab = self.vocabulary
        seq = vocab.encode(tokens)[: self.max_len]
        if len(seq) == 0:
            seq = np.array([vocab.unk_id], dtype=np.int64)
        ids, mask = pad_batch([seq], vocab.pad_id, self.max_len)
        self.encoder.set_store_attention(True)
        try:
            with self.engine.grad_context():
                hidden = self.encoder(ids, pad_mask=mask).data[0]
            attention = self.encoder.attention_maps()[-1][0]  # (H, T, T)
        finally:
            self.encoder.set_store_attention(False)
        return hidden[: len(seq)], attention[:, : len(seq), : len(seq)]

    # -- masked prediction -----------------------------------------------------
    def predict_masked(self, tokens: list, position: int, top_k: int = 10,
                       exclude_specials: bool = True) -> list:
        """Top-``k`` (word, probability) the model predicts at ``position``.

        The token at ``position`` is replaced by ``[MASK]`` before scoring —
        LOTClass's replacement-word query.
        """
        working = list(tokens)
        if not 0 <= position < len(working):
            raise IndexError(f"position {position} out of range")
        working[position] = MASK
        return self.fill_mask(working, top_k=top_k,
                              exclude_specials=exclude_specials)

    def fill_mask(self, tokens: list, top_k: int = 10,
                  exclude_specials: bool = True) -> list:
        """Top-``k`` (word, probability) for the single ``[MASK]`` in ``tokens``."""
        if MASK not in tokens:
            raise ValueError("tokens contain no [MASK]")
        position = tokens.index(MASK)
        vocab = self.vocabulary
        seq = vocab.encode(tokens)[: self.max_len]
        if position >= self.max_len:
            raise ValueError("mask position beyond max_len after truncation")
        ids, mask = pad_batch([seq], vocab.pad_id, self.max_len)
        with self.engine.grad_context():
            hidden = self.encoder(ids, pad_mask=mask)
            # The MLM head is position-wise: project just the masked row.
            row = Tensor(hidden.data[0, position][None, :])
            logits = self.encoder.mlm_logits(row).data[0]
        probs = np.exp(logits - logits.max())
        probs /= probs.sum()
        if exclude_specials:
            for special_id in vocab.special_ids:
                probs[special_id] = 0.0
            probs /= probs.sum()
        idx = np.argsort(-probs)[:top_k]
        return [(vocab.token(int(i)), float(probs[i])) for i in idx]

    def _masked_sequences(self, token_lists: list, positions: list) -> list:
        vocab = self.vocabulary
        sequences = []
        for tokens, pos in zip(token_lists, positions):
            working = list(tokens)
            working[pos] = MASK
            sequences.append(vocab.encode(working)[: self.max_len])
        return sequences

    def mask_logits_batch(self, token_lists: list, positions: list) -> np.ndarray:
        """Vocabulary logits at one masked position per document (N, V).

        The result is float32 and rows are filled batch by batch; callers
        that only need a ranking should prefer :meth:`mask_topk_batch`,
        which never materializes full-vocabulary rows.
        """
        sequences = self._masked_sequences(token_lists, positions)
        return engine.mask_logits(self.encoder, sequences, positions,
                                  self.vocabulary.pad_id, self.engine)

    def mask_topk_batch(self, token_lists: list, positions: list,
                        top_k: int) -> np.ndarray:
        """Top-``k`` vocabulary ids by masked-slot logit per document (N, k).

        Rows are sorted by descending logit; only (B, V) logits exist
        transiently per batch.
        """
        sequences = self._masked_sequences(token_lists, positions)
        ids, _ = engine.mask_topk(self.encoder, sequences, positions,
                                  self.vocabulary.pad_id, self.engine, top_k)
        return ids

    def word_embedding(self, word: str) -> np.ndarray:
        """Static (non-contextual) input embedding of ``word``."""
        return self.encoder.token_embedding.weight.data[self.vocabulary.id(word)]

    def __repr__(self) -> str:
        cfg = self.encoder.config
        return (
            f"PretrainedLM(dim={cfg.dim}, layers={cfg.n_layers}, "
            f"vocab={len(self.vocabulary)})"
        )
