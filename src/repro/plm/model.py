"""User-facing facade over the pre-trained transformer."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import l2_normalize
from repro.plm.encoder import TransformerEncoder, pad_batch
from repro.text.vocabulary import MASK, Vocabulary


class PretrainedLM:
    """A pre-trained language model exposing BERT-style interfaces.

    Wraps a :class:`TransformerEncoder` with batched encoding, pooled
    document embeddings, masked-token ranking, and attention access.
    """

    def __init__(self, encoder: TransformerEncoder, batch_size: int = 32):
        self.encoder = encoder
        self.batch_size = batch_size
        self.encoder.eval()

    @property
    def vocabulary(self) -> Vocabulary:
        return self.encoder.vocabulary

    @property
    def dim(self) -> int:
        return self.encoder.config.dim

    @property
    def max_len(self) -> int:
        return self.encoder.config.max_len

    # -- encoding -----------------------------------------------------------
    def encode_tokens(self, token_lists: list) -> list:
        """Contextualized vectors per document: list of (T_i, dim) arrays.

        Documents longer than ``max_len`` are truncated (documented
        substitution for sliding-window encoding).
        """
        vocab = self.vocabulary
        sequences = [vocab.encode(t)[: self.max_len] for t in token_lists]
        out: list[np.ndarray] = []
        for start in range(0, len(sequences), self.batch_size):
            chunk = sequences[start : start + self.batch_size]
            if not chunk:
                continue
            safe = [s if len(s) else np.array([vocab.unk_id]) for s in chunk]
            ids, mask = pad_batch(safe, vocab.pad_id, self.max_len)
            hidden = self.encoder(ids, pad_mask=mask).data
            for row, seq in zip(hidden, safe):
                out.append(row[: len(seq)].copy())
        return out

    def doc_embeddings(self, token_lists: list, normalize: bool = True) -> np.ndarray:
        """Average-pooled contextual document embeddings (N, dim).

        Out-of-vocabulary positions are excluded from the pool (their UNK
        vectors carry no content); fully-OOV documents fall back to the
        plain mean.
        """
        vocab = self.vocabulary
        unk = vocab.unk_id
        encoded = self.encode_tokens(token_lists)
        rows = []
        for tokens, hidden in zip(token_lists, encoded):
            ids = vocab.encode(list(tokens))[: hidden.shape[0]]
            keep = ids != unk
            if keep.any():
                rows.append(hidden[keep].mean(axis=0))
            else:
                rows.append(hidden.mean(axis=0))
        out = np.stack(rows)
        return l2_normalize(out) if normalize else out

    def encode_with_attention(self, tokens: list) -> tuple:
        """(hidden (T, dim), last-layer attention (heads, T, T)) for one doc."""
        vocab = self.vocabulary
        seq = vocab.encode(tokens)[: self.max_len]
        if len(seq) == 0:
            seq = np.array([vocab.unk_id])
        ids, mask = pad_batch([seq], vocab.pad_id, self.max_len)
        hidden = self.encoder(ids, pad_mask=mask).data[0]
        attention = self.encoder.attention_maps()[-1][0]  # (H, T, T)
        return hidden[: len(seq)], attention[:, : len(seq), : len(seq)]

    # -- masked prediction -----------------------------------------------------
    def predict_masked(self, tokens: list, position: int, top_k: int = 10,
                       exclude_specials: bool = True) -> list:
        """Top-``k`` (word, probability) the model predicts at ``position``.

        The token at ``position`` is replaced by ``[MASK]`` before scoring —
        LOTClass's replacement-word query.
        """
        working = list(tokens)
        if not 0 <= position < len(working):
            raise IndexError(f"position {position} out of range")
        working[position] = MASK
        return self.fill_mask(working, top_k=top_k,
                              exclude_specials=exclude_specials)

    def fill_mask(self, tokens: list, top_k: int = 10,
                  exclude_specials: bool = True) -> list:
        """Top-``k`` (word, probability) for the single ``[MASK]`` in ``tokens``."""
        if MASK not in tokens:
            raise ValueError("tokens contain no [MASK]")
        position = tokens.index(MASK)
        vocab = self.vocabulary
        seq = vocab.encode(tokens)[: self.max_len]
        if position >= self.max_len:
            raise ValueError("mask position beyond max_len after truncation")
        ids, mask = pad_batch([seq], vocab.pad_id, self.max_len)
        hidden = self.encoder(ids, pad_mask=mask)
        logits = self.encoder.mlm_logits(hidden).data[0, position]
        probs = np.exp(logits - logits.max())
        probs /= probs.sum()
        if exclude_specials:
            for special_id in vocab.special_ids:
                probs[special_id] = 0.0
            probs /= probs.sum()
        idx = np.argsort(-probs)[:top_k]
        return [(vocab.token(int(i)), float(probs[i])) for i in idx]

    def mask_logits_batch(self, token_lists: list, positions: list) -> np.ndarray:
        """Vocabulary logits at one masked position per document (N, V)."""
        vocab = self.vocabulary
        sequences = []
        for tokens, pos in zip(token_lists, positions):
            working = list(tokens)
            working[pos] = MASK
            sequences.append(vocab.encode(working)[: self.max_len])
        out = np.zeros((len(sequences), len(vocab)))
        for start in range(0, len(sequences), self.batch_size):
            chunk = sequences[start : start + self.batch_size]
            pos_chunk = positions[start : start + self.batch_size]
            ids, mask = pad_batch(chunk, vocab.pad_id, self.max_len)
            hidden = self.encoder(ids, pad_mask=mask)
            logits = self.encoder.mlm_logits(hidden).data
            for row, (logit_mat, pos) in enumerate(zip(logits, pos_chunk)):
                out[start + row] = logit_mat[min(pos, logit_mat.shape[0] - 1)]
        return out

    def word_embedding(self, word: str) -> np.ndarray:
        """Static (non-contextual) input embedding of ``word``."""
        return self.encoder.token_embedding.weight.data[self.vocabulary.id(word)]

    def __repr__(self) -> str:
        cfg = self.encoder.config
        return (
            f"PretrainedLM(dim={cfg.dim}, layers={cfg.n_layers}, "
            f"vocab={len(self.vocabulary)})"
        )
