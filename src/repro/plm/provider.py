"""Construction and caching of pre-trained models.

Pre-training is the expensive step, so fitted models are cached in-process
keyed by (config, pre-training-stream identity, seed). Methods obtain their
PLM via :func:`get_pretrained_lm`, optionally passing the unlabeled target
corpus for domain-adaptive continued pre-training — which also guarantees
the model's vocabulary covers the corpus (our stand-in for subword
tokenization).
"""

from __future__ import annotations

import numpy as np

from repro.core.enc_cache import EncodeCache
from repro.core.seeding import ensure_rng
from repro.core.types import Corpus
from repro.datasets.pretraining import general_corpus
from repro.plm.config import PLMConfig
from repro.plm.electra import ElectraDiscriminator
from repro.plm.encoder import TransformerEncoder
from repro.plm.model import PretrainedLM
from repro.plm.nli import RelevanceModel
from repro.plm.pretrainer import (
    build_plm_vocabulary,
    init_token_embeddings,
    pretrain_mlm,
)

_PLM_CACHE: dict = {}
_ELECTRA_CACHE: dict = {}
_NLI_CACHE: dict = {}
_ENC_CACHE: "list[EncodeCache | None]" = []  # lazily-built singleton slot


def shared_encode_cache() -> "EncodeCache | None":
    """The process-wide document-encoding cache (None when disabled).

    Built once from the environment (``REPRO_ENC_CACHE*``) and wired into
    every provider-constructed :class:`PretrainedLM`, so all methods that
    encode the same corpus through the same model share hidden states.
    """
    if not _ENC_CACHE:
        _ENC_CACHE.append(EncodeCache.from_env())
    return _ENC_CACHE[0]


def clear_cache() -> None:
    """Drop all cached models and encodings (tests use this for isolation)."""
    _PLM_CACHE.clear()
    _ELECTRA_CACHE.clear()
    _NLI_CACHE.clear()
    if _ENC_CACHE and _ENC_CACHE[0] is not None:
        _ENC_CACHE[0].clear()


def _corpus_key(corpus: "Corpus | None") -> tuple:
    if corpus is None:
        return ("none",)
    return (corpus.name, len(corpus))


def get_pretrained_lm(target_corpus: "Corpus | None" = None,
                      config: "PLMConfig | None" = None,
                      seed: int = 0) -> PretrainedLM:
    """A pre-trained LM, domain-adapted to ``target_corpus`` when given."""
    config = config or PLMConfig()
    key = (config.cache_key(), _corpus_key(target_corpus), seed)
    if key in _PLM_CACHE:
        return _PLM_CACHE[key]

    rng = ensure_rng(seed)
    pretrain = general_corpus(seed=seed, n_docs=config.pretrain_docs)
    streams = pretrain.token_lists()
    if target_corpus is not None:
        streams = streams + target_corpus.token_lists()
    vocabulary = build_plm_vocabulary(streams)
    encoder = TransformerEncoder(vocabulary, config, rng)
    if config.init_from_svd:
        init_token_embeddings(encoder, streams, config, seed=seed)
    pretrain_mlm(encoder, streams, config, seed=rng)
    plm = PretrainedLM(encoder, enc_cache=shared_encode_cache())
    _PLM_CACHE[key] = plm
    # Stash the pre-training provenance for downstream fine-tuning heads.
    plm._pretrain_corpus = pretrain  # noqa: SLF001 - internal plumbing
    plm._seed = seed  # noqa: SLF001
    return plm


def get_electra(plm: PretrainedLM, config: "PLMConfig | None" = None) -> ElectraDiscriminator:
    """The replaced-token-detection head for ``plm`` (trained once, cached)."""
    key = id(plm)
    if key in _ELECTRA_CACHE:
        return _ELECTRA_CACHE[key]
    config = config or plm.encoder.config
    seed = getattr(plm, "_seed", 0)
    pretrain = getattr(plm, "_pretrain_corpus", None)
    if pretrain is None:
        pretrain = general_corpus(seed=seed, n_docs=config.pretrain_docs)
    discriminator = ElectraDiscriminator(plm, seed=seed)
    discriminator.train(pretrain.token_lists(), steps=config.electra_steps,
                        batch_size=config.batch_size, seed=seed + 1)
    _ELECTRA_CACHE[key] = discriminator
    return discriminator


def get_relevance_model(plm: PretrainedLM, steps: int = 150) -> RelevanceModel:
    """The NLI-style relevance model for ``plm`` (trained once, cached).

    Fine-tuned on synthetic entailment pairs built from the pre-training
    corpus, whose documents carry their generating theme as provenance.
    """
    key = id(plm)
    if key in _NLI_CACHE:
        return _NLI_CACHE[key]
    seed = getattr(plm, "_seed", 0)
    pretrain = getattr(plm, "_pretrain_corpus", None)
    if pretrain is None:
        pretrain = general_corpus(seed=seed)
    token_lists = pretrain.token_lists()
    themes = [doc.labels[0] for doc in pretrain]
    theme_names = {theme: [theme.split(":", 1)[-1]] for theme in set(themes)}
    model = RelevanceModel(plm, seed=seed)
    model.train_synthetic(token_lists, themes, theme_names, steps=steps,
                          seed=seed + 2)
    _NLI_CACHE[key] = model
    return model
