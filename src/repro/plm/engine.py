"""Batched PLM inference engine: length buckets + no-grad execution.

The seed encode paths padded every fixed-size chunk to the chunk max and
recorded a full autograd graph for forwards that never backpropagate. This
module plans better batches and runs them gradient-free:

- **Length bucketing** — sequences are sorted by length (stable, so equal
  lengths keep corpus order) and grouped so each batch pads to its own max
  instead of the global one. Attention is quadratic in the padded length,
  so on long-tailed corpora this removes most of the work.
- **Token budgets** — a batch closes when adding the next sequence would
  exceed ``token_budget`` padded tokens (default ``batch_size * max_len``,
  the seed path's worst-case footprint), so many short documents share one
  batch while worst-case memory never grows.
- **No-grad execution** — every batch runs under
  :class:`repro.nn.tensor.inference_mode`, skipping graph construction.
- **Position-gathered MLM head** — masked-position logits are computed
  from the (B, D) rows at the masked positions instead of the full
  (B, T, V) projection, a T-fold reduction in head FLOPs with identical
  values (the head is position-wise).

Batch composition never changes the numbers: padded key slots receive
exactly zero attention weight, so each document's rows depend only on its
own ids. The equivalence tests in ``tests/test_plm_engine.py`` assert this
for every entry point.

Env knobs (read by :meth:`EngineConfig.from_env`):

- ``REPRO_ENGINE_BUCKET=0`` — disable length bucketing (seed-style chunks)
- ``REPRO_ENGINE_INFERENCE_MODE=0`` — keep recording autograd graphs
- ``REPRO_ENGINE_CACHE=0`` — skip the encode cache on model read paths
- ``REPRO_ENGINE_TOKEN_BUDGET=<int>`` — padded tokens per batch
- ``REPRO_ENGINE_FUSED_INFER=1`` — run batches through the packed
  predict-only forward (:mod:`repro.plm.infer`); float32-ulp-equivalent
  to the Tensor path, not bit-identical. Quantized artifacts enable it
  by default; ``=0`` forces the Tensor path even for those.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core import env as _env
from repro.nn.tensor import Tensor, inference_mode
from repro.plm.encoder import TransformerEncoder, pad_batch


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the inference engine; every layer can be disabled."""

    batch_size: int = 32
    bucket: bool = True
    inference: bool = True
    cache: bool = True
    token_budget: "int | None" = None  # None -> batch_size * max_len
    fused_infer: bool = False  # packed numpy forward (float32-ulp, not bit)

    @classmethod
    def from_env(cls, batch_size: int = 32) -> "EngineConfig":
        """Config honouring the ``REPRO_ENGINE_*`` environment knobs."""
        forced = _env.engine_fused_infer()
        return cls(
            batch_size=batch_size,
            bucket=_env.env_flag("REPRO_ENGINE_BUCKET", True),
            inference=_env.env_flag("REPRO_ENGINE_INFERENCE_MODE", True),
            cache=_env.env_flag("REPRO_ENGINE_CACHE", True),
            token_budget=_env.engine_token_budget(),
            fused_infer=bool(forced),
        )

    def grad_context(self):
        """The context manager batches execute under."""
        return inference_mode() if self.inference else contextlib.nullcontext()


def plan_batches(lengths: list, config: EngineConfig, max_len: int) -> list:
    """Partition sequence indices into batches.

    Returns index arrays (into the original order). With bucketing off this
    is plain fixed-size chunking in corpus order — the seed behaviour. With
    bucketing on, indices are stably sorted by length and batches grow
    until the *padded* size (count x running max length) would exceed the
    token budget, or the batch holds ``batch_size * max_len`` sequences
    (cap for degenerate all-empty inputs).
    """
    n = len(lengths)
    if n == 0:
        return []
    if not config.bucket:
        return [np.arange(start, min(start + config.batch_size, n))
                for start in range(0, n, config.batch_size)]
    budget = config.token_budget or config.batch_size * max_len
    order = np.argsort(np.asarray(lengths, dtype=np.int64), kind="stable")
    batches: list[np.ndarray] = []
    current: list[int] = []
    for idx in order:
        # Sorted ascending: the candidate's (clamped) length is the batch max.
        padded = min(max(int(lengths[idx]), 1), max_len)
        if current and ((len(current) + 1) * padded > budget
                        or len(current) >= config.batch_size * max_len):
            batches.append(np.asarray(current, dtype=np.int64))
            current = []
        current.append(int(idx))
    if current:
        batches.append(np.asarray(current, dtype=np.int64))
    return batches


def run_encoder(encoder: TransformerEncoder, sequences: list, pad_id: int,
                config: EngineConfig, per_batch) -> None:
    """Run ``sequences`` (id arrays) through ``encoder`` batch by batch.

    ``per_batch(indices, ids, pad_mask, hidden)`` is invoked inside the
    engine's grad context for every planned batch; ``indices`` maps batch
    rows back to positions in ``sequences``, ``hidden`` is the (B, T, D)
    output tensor. Consumers un-permute by writing through ``indices``.
    """
    max_len = encoder.config.max_len
    batches = plan_batches([len(s) for s in sequences], config, max_len)
    packed = None
    if config.fused_infer and config.inference:
        from repro.nn import functional as F
        if F.fused_enabled():
            from repro.plm.infer import packed_encoder
            packed = packed_encoder(encoder)
    for indices in batches:
        chunk = [sequences[i] for i in indices]
        ids, pad_mask = pad_batch(chunk, pad_id, max_len)
        with obs.span("encode:batch", docs=len(chunk),
                      width=int(ids.shape[1])):
            with config.grad_context():
                if packed is not None:
                    hidden = Tensor(packed.forward(ids, pad_mask))
                else:
                    hidden = encoder(ids, pad_mask=pad_mask)
                per_batch(indices, ids, pad_mask, hidden)
        if obs.enabled():
            obs.count("plm.batches")
            obs.count("plm.tokens_encoded", int(ids.size - pad_mask.sum()))
            obs.count("plm.padded_tokens", int(ids.size))


def encode_hidden(encoder: TransformerEncoder, sequences: list, pad_id: int,
                  config: EngineConfig) -> list:
    """Per-document hidden states: list of (T_i, D) arrays in input order."""
    out: list = [None] * len(sequences)

    def collect(indices, ids, pad_mask, hidden):
        data = hidden.data
        for row, i in enumerate(indices):
            out[i] = data[row, : len(sequences[i])].copy()

    run_encoder(encoder, sequences, pad_id, config, collect)
    return out


def _masked_rows(sequences: list, positions: list, indices: np.ndarray,
                 hidden: Tensor) -> Tensor:
    """(B, D) hidden rows at each document's masked position.

    Positions beyond a truncated document clamp to its own last real token
    (never to a padding slot, whose value would depend on batch
    composition).
    """
    pos = np.array(
        [min(positions[i], max(len(sequences[i]), 1) - 1) for i in indices],
        dtype=np.int64,
    )
    return Tensor(hidden.data[np.arange(len(indices)), pos])


def mask_logits(encoder: TransformerEncoder, sequences: list, positions: list,
                pad_id: int, config: EngineConfig,
                dtype=np.float32) -> np.ndarray:
    """(N, V) vocabulary logits at one masked position per document.

    Rows are written straight into the output array per batch — nothing
    larger than (B, V) is ever materialized — and the output defaults to
    float32 (the seed kept an (N, V) float64 matrix alive throughout).
    """
    out = np.zeros((len(sequences), len(encoder.vocabulary)), dtype=dtype)

    def head(indices, ids, pad_mask, hidden):
        rows = _masked_rows(sequences, positions, indices, hidden)
        out[indices] = encoder.mlm_logits(rows).data

    run_encoder(encoder, sequences, pad_id, config, head)
    return out


def mask_topk(encoder: TransformerEncoder, sequences: list, positions: list,
              pad_id: int, config: EngineConfig, top_k: int) -> tuple:
    """Top-``k`` vocabulary ids and logits at each document's masked slot.

    Returns ``(ids, logits)`` of shape (N, k), each row sorted by
    descending logit. Only (B, V) logits exist transiently per batch, so
    LOTClass-style consumers never hold full-vocabulary matrices.
    """
    n = len(sequences)
    k = min(top_k, len(encoder.vocabulary))
    top_ids = np.zeros((n, k), dtype=np.int64)
    top_logits = np.zeros((n, k), dtype=np.float32)

    def head(indices, ids, pad_mask, hidden):
        rows = _masked_rows(sequences, positions, indices, hidden)
        logits = encoder.mlm_logits(rows).data  # (B, V)
        part = np.argpartition(-logits, k - 1, axis=1)[:, :k]
        values = np.take_along_axis(logits, part, axis=1)
        order = np.argsort(-values, axis=1, kind="stable")
        top_ids[indices] = np.take_along_axis(part, order, axis=1)
        top_logits[indices] = np.take_along_axis(values, order, axis=1)

    run_encoder(encoder, sequences, pad_id, config, head)
    return top_ids, top_logits
