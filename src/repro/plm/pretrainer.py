"""Masked-language-model pre-training of the numpy transformer.

Pre-training follows BERT's recipe at miniature scale: 15% of tokens are
selected; 80% of those become ``[MASK]``, 10% a random token, 10% stay
unchanged; the encoder must recover the originals. Token embeddings start
from PPMI-SVD vectors of the pre-training corpus, which substitutes for the
topical knowledge a full-scale model would acquire — MLM steps then teach
the encoder to *use context*.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.seeding import ensure_rng
from repro.embeddings.ppmi_svd import PPMISVDEmbeddings
from repro.nn.losses import cross_entropy
from repro.nn.optim import Adam
from repro.plm.config import PLMConfig
from repro.plm.encoder import BatchPlan, TransformerEncoder
from repro.text.vocabulary import Vocabulary

IGNORE = -100


def build_plm_vocabulary(token_lists: list, min_count: int = 1,
                         max_size: "int | None" = 6000) -> Vocabulary:
    """Vocabulary over the pre-training stream (specials reserved)."""
    return Vocabulary.build(token_lists, min_count=min_count, max_size=max_size)


def init_token_embeddings(encoder: TransformerEncoder, token_lists: list,
                          config: PLMConfig, seed: int = 0) -> None:
    """Overwrite the token table with scaled PPMI-SVD vectors."""
    svd = PPMISVDEmbeddings(dim=config.dim, window=config.svd_window)
    svd.fit(token_lists, vocabulary=encoder.vocabulary, seed=seed)
    weight = encoder.token_embedding.weight
    # order='C': the SVD matrix can be F-ordered, and BLAS results differ
    # by a ulp between layouts — save/load round-trips must stay bit-exact.
    table = svd.matrix().astype(weight.data.dtype, order="C")
    # Match BERT-style initialization scale so LayerNorm statistics are sane.
    scale = float(np.abs(table).mean()) + 1e-12
    weight.data = table * (0.08 / scale)


def _mask_tokens(ids: np.ndarray, pad_mask: np.ndarray, vocab: Vocabulary,
                 mlm_prob: float, rng: np.random.Generator) -> tuple:
    """BERT masking. Returns (corrupted ids, targets with IGNORE)."""
    ids = ids.copy()
    targets = np.full_like(ids, IGNORE)
    candidates = ~pad_mask
    selected = candidates & (rng.random(ids.shape) < mlm_prob)
    if not selected.any():
        # Guarantee at least one prediction target per batch.
        rows = np.arange(ids.shape[0])
        cols = np.array([int(np.flatnonzero(c)[0]) if c.any() else 0
                         for c in candidates], dtype=np.int64)
        selected[rows, cols] = candidates[rows, cols]
    targets[selected] = ids[selected]
    action = rng.random(ids.shape)
    mask_slot = selected & (action < 0.8)
    random_slot = selected & (action >= 0.8) & (action < 0.9)
    ids[mask_slot] = vocab.mask_id
    if random_slot.any():
        n_special = len(vocab.specials)
        ids[random_slot] = rng.integers(n_special, len(vocab), size=int(random_slot.sum()))
    return ids, targets


def pretrain_mlm(encoder: TransformerEncoder, token_lists: list,
                 config: PLMConfig, seed: "int | np.random.Generator" = 0,
                 log: "list | None" = None) -> None:
    """Run ``config.mlm_steps`` of masked-LM training in place."""
    rng = ensure_rng(seed)
    vocab = encoder.vocabulary
    train_len = min(config.max_len, config.pretrain_max_len)
    sequences = [vocab.encode(t)[:train_len] for t in token_lists if t]
    if not sequences:
        raise ValueError("pre-training corpus is empty")
    optimizer = Adam(encoder.parameters(), lr=config.lr)
    # One padding plan for the whole run: every step's batch is a pair of
    # vectorized gathers into reusable buffers instead of a Python loop.
    plan = BatchPlan(sequences, vocab.pad_id, train_len)
    with obs.span("nn.pretrain_mlm", steps=int(config.mlm_steps),
                  docs=len(sequences)):
        for step in range(config.mlm_steps):
            idx = rng.integers(0, len(sequences), size=config.batch_size)
            batch_ids, pad_mask = plan.gather(idx)
            corrupted, targets = _mask_tokens(batch_ids, pad_mask, vocab,
                                              config.mlm_prob, rng)
            hidden = encoder(corrupted, pad_mask=pad_mask)
            # Project only the masked positions onto the vocabulary — the
            # output layer dominates step cost otherwise.
            rows, cols = np.nonzero(targets != IGNORE)
            picked = hidden[rows, cols]  # (M, D)
            logits = encoder.mlm_logits(picked)
            loss = cross_entropy(logits, targets[rows, cols])
            optimizer.zero_grad()
            loss.backward()
            optimizer.clip_grad_norm(5.0)
            optimizer.step()
            if log is not None:
                log.append(float(loss.item()))
