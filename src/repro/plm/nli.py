"""Sequence-pair relevance model (NLI-style entailment scorer).

TaxoClass queries a BERT fine-tuned on MNLI with "premise = document,
hypothesis = 'this document is about <class>'". Our stand-in encodes both
sides with the pre-trained encoder and scores entailment with an
InferSent-style interaction head ``[p, h, |p-h|, p*h] -> MLP -> prob``,
fine-tuned on synthetic entailment pairs built from the *pre-training*
corpus (whose topic provenance is known by construction) — never from the
evaluation corpus, preserving the transfer story.
"""

from __future__ import annotations

import numpy as np

from repro.core.seeding import ensure_rng
from repro.nn.layers import Linear, Module
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, inference_mode
from repro.plm.model import PretrainedLM


class _InteractionHead(Module):
    """Linear head over pair-interaction features.

    Features are ``[p * h, |p - h|, cos(p, h)]``; a linear map over the
    element-wise product is a learned reweighting of cosine similarity,
    which keeps the (strong) similarity prior while letting fine-tuning
    calibrate it. Initialized so the raw cosine dominates at step zero.
    """

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.fc = Linear(2 * dim + 1, 1, rng)
        # Start as a scaled cosine scorer: the last feature is cos(p, h).
        self.fc.weight.data[:] = 0.0
        self.fc.weight.data[-1, 0] = 4.0

    def forward(self, features: Tensor) -> Tensor:
        """Entailment logit per feature row."""
        return self.fc(features)


class RelevanceModel:
    """Entailment probability for (premise, hypothesis) token pairs."""

    def __init__(self, plm: PretrainedLM, hidden: int = 32,
                 seed: "int | np.random.Generator" = 0):
        self.plm = plm
        rng = ensure_rng(seed)
        self.head = _InteractionHead(plm.dim, hidden, rng)
        self._trained = False

    def _features(self, premises: list, hypotheses: list) -> np.ndarray:
        p = self.plm.doc_embeddings(premises, normalize=True)
        h = self.plm.doc_embeddings(hypotheses, normalize=True)
        return self._pair_features(p, h)

    @staticmethod
    def _pair_features(p: np.ndarray, h: np.ndarray) -> np.ndarray:
        cos = (p * h).sum(axis=1, keepdims=True)
        return np.concatenate([p * h, np.abs(p - h), cos], axis=1)

    def train_synthetic(self, token_lists: list, themes: list, theme_names: dict,
                        steps: int = 150, batch_size: int = 32, lr: float = 3e-3,
                        seed: "int | np.random.Generator" = 0) -> "RelevanceModel":
        """Fit on synthetic entailment pairs.

        ``token_lists[i]`` has topic ``themes[i]``; ``theme_names`` maps a
        theme to hypothesis tokens (e.g. the theme's label words). Each
        step samples half positive pairs (true theme) and half negatives
        (random other theme).
        """
        rng = ensure_rng(seed)
        unique = sorted(set(themes))
        if len(unique) < 2:
            raise ValueError("need at least two themes for negative pairs")
        optimizer = Adam(self.head.parameters(), lr=lr)
        # Embed every premise and every theme hypothesis exactly once: the
        # encoder inputs never change across steps, so each step reduces
        # to a vectorized gather + the (tiny) head update.
        premise_emb = self.plm.doc_embeddings(token_lists, normalize=True)
        theme_emb = self.plm.doc_embeddings(
            [self._hypothesis(theme_names[t]) for t in unique], normalize=True
        )
        theme_index = {t: j for j, t in enumerate(unique)}
        true_idx = np.array([theme_index[t] for t in themes], dtype=np.int64)
        n_themes = len(unique)
        for _ in range(steps):
            idx = rng.integers(0, len(token_lists), size=batch_size)
            positive = rng.random(batch_size) < 0.5
            # Uniform draw over the other themes: offset-and-wrap skips the
            # true theme without building per-example candidate lists.
            offsets = rng.integers(1, n_themes, size=batch_size)
            chosen = np.where(positive, true_idx[idx],
                              (true_idx[idx] + offsets) % n_themes)
            labels = positive.astype(premise_emb.dtype)
            feats = self._pair_features(premise_emb[idx], theme_emb[chosen])
            logits = self.head(Tensor(feats)).reshape(-1)
            loss = binary_cross_entropy_with_logits(logits, labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        self._trained = True
        return self

    @staticmethod
    def _hypothesis(name_tokens: list) -> list:
        # The hypothesis is the class name itself. (BERT renders "this
        # document is about <name>"; our synthetic vocabulary has no such
        # function words, and padding the name with UNK vectors would only
        # dilute it.)
        return list(name_tokens)

    def relevance(self, premise_tokens: list, hypothesis_name_tokens: list) -> float:
        """Entailment probability for one (document, class-name) pair."""
        return float(
            self.relevance_batch([premise_tokens], [hypothesis_name_tokens])[0]
        )

    def relevance_batch(self, premises: list, hypothesis_names: list) -> np.ndarray:
        """Entailment probabilities for aligned (document, class-name) pairs."""
        hypotheses = [self._hypothesis(n) for n in hypothesis_names]
        feats = self._features(premises, hypotheses)
        with inference_mode():
            logits = self.head(Tensor(feats)).data.reshape(-1)
        return 1.0 / (1.0 + np.exp(-logits))

    def relevance_matrix(self, premises: list, hypothesis_names: list) -> np.ndarray:
        """(n_docs, n_classes) grid of entailment probabilities.

        Premise embeddings are computed once; hypothesis embeddings once;
        the head is evaluated on the cross product.
        """
        p = self.plm.doc_embeddings(premises, normalize=True)
        h = self.plm.doc_embeddings(
            [self._hypothesis(n) for n in hypothesis_names], normalize=True
        )
        n, m = p.shape[0], h.shape[0]
        p_rep = np.repeat(p, m, axis=0)
        h_rep = np.tile(h, (n, 1))
        feats = self._pair_features(p_rep, h_rep)
        with inference_mode():
            logits = self.head(Tensor(feats)).data.reshape(n, m)
        return 1.0 / (1.0 + np.exp(-logits))
