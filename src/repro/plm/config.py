"""PLM configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class PLMConfig:
    """Hyper-parameters of the numpy PLM.

    The defaults trade scale for CPU speed: a 2-layer, 48-dim encoder
    pre-trained for a few hundred MLM steps, with token embeddings
    initialized from PPMI-SVD so topical structure exists from step zero
    (the stand-in for large-scale pre-training).
    """

    dim: int = 48
    n_layers: int = 2
    n_heads: int = 4
    ff_hidden: int = 96
    max_len: int = 48
    dropout: float = 0.0

    # Pre-training
    pretrain_max_len: int = 32
    mlm_prob: float = 0.15
    mlm_steps: int = 350
    electra_steps: int = 120
    batch_size: int = 32
    lr: float = 3e-3
    init_from_svd: bool = True
    svd_window: int = 5

    # Pre-training corpus
    pretrain_docs: int = 1200

    def cache_key(self) -> tuple:
        """Hashable identity for the provider cache."""
        return tuple(sorted(self.__dict__.items()))


def tiny_config() -> PLMConfig:
    """A small config for unit tests (seconds, not minutes).

    Large enough that contextual structure emerges (the method tests rely
    on topical masked predictions and class-separable representations),
    small enough to pre-train in a few seconds.
    """
    return PLMConfig(
        dim=32, n_layers=2, n_heads=2, ff_hidden=64, max_len=32,
        mlm_steps=300, electra_steps=60, batch_size=16, pretrain_docs=700,
    )


def scaled_config(base: PLMConfig, **overrides) -> PLMConfig:
    """A copy of ``base`` with the given fields replaced."""
    return replace(base, **overrides)
