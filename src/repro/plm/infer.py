"""Packed predict-only forward: fused attention kernels for serving.

The Tensor-based encoder forward is built from ~30 autograd ops per
layer; under :class:`~repro.nn.tensor.inference_mode` no graph is
recorded, but every op still allocates fresh arrays and dispatches
through the Tensor wrapper. For predict-only traffic (the serving
engine, quantized artifacts) that overhead is pure tax: at serving batch
shapes the encoder spends 30-60% of its wall clock outside BLAS.

:class:`PackedEncoder` is the predict-only twin of
:class:`~repro.plm.encoder.TransformerEncoder`:

- **packed weights** — every layer's parameters are captured once as
  contiguous numpy arrays (no Tensor indirection, no per-call getattr
  chains);
- **fused attention** — QKV projection, scaled scores, masked softmax,
  and the attention-weighted value sum run as one hand-written numpy
  pass with in-place exp/normalize, mirroring the op order of the fused
  kernels in :mod:`repro.nn.functional` so outputs agree with the
  Tensor path to float32 ulp;
- **cache-blocked scores** — query rows are processed in blocks of
  ``block_rows`` (``REPRO_ENGINE_BLOCK_ROWS``), so the (T, T) score
  matrix never exceeds (block, T) per head and stays cache-resident for
  long sequences.

The packed path is *inference-only*: it never records gradients, never
stores attention maps, and assumes frozen weights (the same contract as
the encode cache's content-addressed namespace). It activates through
the engine when ``EngineConfig.fused_infer`` is set — quantized
predict-only artifacts enable it by default — and only while the fused
kernels are active (:func:`repro.nn.functional.fused_enabled`), so
``set_fused(False)`` disables this path together with the training
kernels. The equivalence suite (``tests/test_infer_fused.py``) holds
packed and Tensor forwards to float32-ulp agreement.
"""

from __future__ import annotations

import numpy as np

from repro.core import env as _env
from repro.plm.encoder import TransformerEncoder

#: Finite stand-in for -inf in masked softmax (matches nn.functional).
_MASK_FILL = -1e9

#: Default query-block height for the attention score kernel.
_DEFAULT_BLOCK_ROWS = 128


def block_rows() -> int:
    """Query-block height for cache-blocked attention scores."""
    value = _env.env_int("REPRO_ENGINE_BLOCK_ROWS", _DEFAULT_BLOCK_ROWS)
    return max(1, int(value))


class PackedEncoder:
    """Contiguous-weight, fused-kernel view of a frozen encoder.

    Construction snapshots the encoder's parameter arrays (no copies for
    already-contiguous arrays beyond the QKV/out weights); ``forward``
    reproduces ``encoder(ids, pad_mask).data`` for an ``eval()``-mode
    encoder without building a single Tensor.
    """

    def __init__(self, encoder: TransformerEncoder, block: "int | None" = None):
        config = encoder.config
        self.dim = config.dim
        self.n_heads = config.n_heads
        self.head_dim = config.dim // config.n_heads
        self.max_len = config.max_len
        self.block = int(block) if block else block_rows()
        self.token_table = encoder.token_embedding.weight.data
        self.position_table = encoder.position_embedding.weight.data
        self.final_norm = (encoder.final_norm.gain.data,
                           encoder.final_norm.bias.data,
                           encoder.final_norm.eps)
        self.layers = []
        for blk in encoder.blocks:
            self.layers.append((
                (blk.norm1.gain.data, blk.norm1.bias.data, blk.norm1.eps),
                np.ascontiguousarray(blk.attn.qkv.weight.data),
                blk.attn.qkv.bias.data,
                np.ascontiguousarray(blk.attn.out.weight.data),
                blk.attn.out.bias.data,
                (blk.norm2.gain.data, blk.norm2.bias.data, blk.norm2.eps),
                blk.ff.fc1.weight.data, blk.ff.fc1.bias.data,
                blk.ff.fc2.weight.data, blk.ff.fc2.bias.data,
            ))

    # -- kernels --------------------------------------------------------------
    @staticmethod
    def _layer_norm(x: np.ndarray, params: tuple) -> np.ndarray:
        """Fresh layer-normed copy of ``x`` (same op order as F.layer_norm).

        Uses ``np.add.reduce`` directly instead of ``ndarray.mean``: both
        run the same pairwise summation (bit-identical), but the direct
        ufunc skips the python-side mean wrapper, which dominates at
        single-document batch shapes.
        """
        gain, bias, eps = params
        dim = x.shape[-1]
        mean = np.add.reduce(x, axis=-1, keepdims=True)
        mean /= dim
        xhat = x - mean
        inv = np.add.reduce(xhat * xhat, axis=-1, keepdims=True)
        inv /= dim
        inv += eps
        np.sqrt(inv, out=inv)
        np.reciprocal(inv, out=inv)
        xhat *= inv
        out = xhat * gain
        out += bias
        return out

    @staticmethod
    def _gelu_(x: np.ndarray) -> np.ndarray:
        """In-place tanh-approximation GELU (same constants as Tensor.gelu)."""
        c = float(np.sqrt(2.0 / np.pi))
        inner = 0.044715 * (x * x * x)
        inner += x
        inner *= c
        np.tanh(inner, out=inner)
        inner += 1.0
        inner *= 0.5
        x *= inner
        return x

    def _attention(self, hidden: np.ndarray, layer: tuple,
                   key_mask: "np.ndarray | None") -> np.ndarray:
        """Fused QKV -> blocked scores -> masked softmax -> value sum."""
        batch, seq, dim = hidden.shape
        heads, head_dim = self.n_heads, self.head_dim
        qkv = hidden.reshape(batch * seq, dim) @ layer[1]
        qkv += layer[2]
        # One contiguous (3, B, H, T, Dh) copy: every later matmul then
        # runs on C-ordered operands instead of strided views.
        qkv = np.ascontiguousarray(
            qkv.reshape(batch, seq, 3, heads, head_dim).transpose(2, 0, 3, 1, 4)
        )
        q, k, v = qkv[0], qkv[1], qkv[2]
        scale = 1.0 / float(np.sqrt(head_dim))
        keys_t = k.swapaxes(-1, -2)
        context = np.empty_like(q)
        for start in range(0, seq, self.block):
            stop = min(start + self.block, seq)
            scores = q[:, :, start:stop] @ keys_t
            scores *= scale
            if key_mask is not None:
                np.copyto(scores, _MASK_FILL,
                          where=np.broadcast_to(key_mask, scores.shape))
            scores -= np.maximum.reduce(scores, axis=-1, keepdims=True)
            np.exp(scores, out=scores)
            scores /= np.add.reduce(scores, axis=-1, keepdims=True)
            context[:, :, start:stop] = scores @ v
        context = context.transpose(0, 2, 1, 3).reshape(batch * seq, dim)
        out = context @ layer[3]
        out += layer[4]
        return out.reshape(batch, seq, dim)

    # -- forward --------------------------------------------------------------
    def forward(self, ids: np.ndarray, pad_mask: "np.ndarray | None" = None) -> np.ndarray:
        """Hidden states (B, T, D) for an int id batch, pure numpy."""
        ids = np.asarray(ids, dtype=np.int64)
        batch, seq = ids.shape
        if seq > self.max_len:
            raise ValueError(
                f"sequence length {seq} exceeds max_len {self.max_len}"
            )
        x = self.token_table[ids] + self.position_table[:seq][None, :]
        key_mask = None
        if pad_mask is not None and pad_mask.any():
            key_mask = pad_mask[:, None, None, :]
        for layer in self.layers:
            x += self._attention(self._layer_norm(x, layer[0]), layer, key_mask)
            ff = self._layer_norm(x, layer[5])
            ff = ff.reshape(batch * seq, self.dim) @ layer[6]
            ff += layer[7]
            ff = self._gelu_(ff) @ layer[8]
            ff += layer[9]
            x += ff.reshape(batch, seq, self.dim)
        return self._layer_norm(x, self.final_norm)

    __call__ = forward


def packed_encoder(encoder: TransformerEncoder) -> PackedEncoder:
    """The cached :class:`PackedEncoder` for ``encoder`` (built on first use).

    The pack is keyed on the encoder instance and assumes frozen weights —
    the same read-path contract as ``PretrainedLM.cache_namespace``.
    Anything that re-trains the encoder must discard it (or construct a
    fresh encoder, as the training paths already do).
    """
    packed = getattr(encoder, "_packed_encoder", None)
    if packed is None:
        packed = PackedEncoder(encoder)
        encoder._packed_encoder = packed
    return packed
