"""Versioned model registry rooted at ``REPRO_MODEL_DIR``.

On-disk layout — one directory per model name, one artifact directory
per version::

    <root>/
        agnews-westclass/
            v0001/            # artifact (manifest.json, state.pkl, plm_*.npz)
            v0002/

Versions are monotonically increasing integers assigned at publish time.
``latest`` is a *persisted alias* — a one-line ``latest`` file in the
model directory, written atomically at publish and repointed on evict
(to the newest remaining version; removed with the model when the last
version goes), so the alias can never dangle through registry
operations. A hand-damaged alias (pointing at a version that no longer
exists) resolves to a typed
:class:`~repro.core.exceptions.DanglingReference` naming the repair;
registries written before the alias existed fall back to the highest
on-disk version. Publishing is atomic (the artifact store renames a
fully-written directory into place), loads digest-verify by default,
and ``evict`` removes a version (or a whole model). Names are
restricted to ``[a-z0-9._-]`` so registry paths stay shell- and
URL-safe.
"""

from __future__ import annotations

import os
import re
import shutil
from pathlib import Path

from repro.core import env as _env
from repro.core.exceptions import ArtifactError, DanglingReference
from repro.serve.artifacts import (
    ServableModel,
    export_artifact,
    load_artifact,
    read_manifest,
)

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9._-]*$")
_VERSION_RE = re.compile(r"^v(\d{4,})$")
LATEST = "latest"


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ArtifactError(
            f"invalid model name {name!r}: use lowercase letters, digits, "
            "'.', '_' and '-' (must start alphanumeric)"
        )
    return name


def parse_ref(ref: str) -> tuple:
    """Split ``name`` / ``name@latest`` / ``name@7`` / ``name@v0007``."""
    name, _, version = ref.partition("@")
    return _check_name(name), version or LATEST


class ModelRegistry:
    """Named, versioned model store over the artifact format.

    Parameters
    ----------
    root:
        Registry directory; defaults to the ``REPRO_MODEL_DIR``
        environment knob (see :func:`repro.core.env.model_dir`).
    """

    def __init__(self, root: "str | Path | None" = None):
        self.root = Path(root) if root is not None else _env.model_dir()

    # -- paths ---------------------------------------------------------------
    def model_dir(self, name: str) -> Path:
        return self.root / _check_name(name)

    def version_dir(self, name: str, version: int) -> Path:
        return self.model_dir(name) / f"v{version:04d}"

    # -- queries -------------------------------------------------------------
    def models(self) -> list:
        """Sorted names of every published model."""
        if not self.root.exists():
            return []
        return sorted(
            p.name for p in self.root.iterdir()
            if p.is_dir() and _NAME_RE.match(p.name) and self.versions(p.name)
        )

    def versions(self, name: str) -> list:
        """Sorted version numbers published under ``name``."""
        directory = self.model_dir(name)
        if not directory.exists():
            return []
        found = []
        for p in directory.iterdir():
            match = _VERSION_RE.match(p.name)
            if match and p.is_dir() and (p / "manifest.json").exists():
                found.append(int(match.group(1)))
        return sorted(found)

    # -- the latest alias ----------------------------------------------------
    def _alias_path(self, name: str) -> Path:
        return self.model_dir(name) / LATEST

    def _read_alias(self, name: str) -> "int | None":
        """The persisted alias target, or None (pre-alias registry)."""
        path = self._alias_path(name)
        try:
            text = path.read_text().strip()
        except FileNotFoundError:
            return None
        match = _VERSION_RE.match(text)
        if not match:
            raise ArtifactError(
                f"registry alias {path} is corrupt (contains {text!r}); "
                "delete it to fall back to the highest version"
            )
        return int(match.group(1))

    def _write_alias(self, name: str, version: int) -> None:
        """Atomically point ``latest`` at ``version``."""
        path = self._alias_path(name)
        tmp = path.with_name(f".{LATEST}.tmp-{os.getpid()}")
        tmp.write_text(f"v{version:04d}\n")
        os.replace(tmp, path)

    def resolve(self, name: str, version: "int | str" = LATEST) -> int:
        """Resolve ``version`` (int, ``"7"``, ``"v0007"``, ``"latest"``).

        ``latest`` reads the persisted alias; an alias pointing at a
        version that no longer exists raises
        :class:`DanglingReference` (repair by re-publishing, evicting
        through the registry, or deleting the alias file).
        """
        versions = self.versions(name)
        if not versions:
            raise ArtifactError(
                f"model {name!r} has no published versions under {self.root}"
            )
        if version == LATEST:
            alias = self._read_alias(name)
            if alias is None:
                return versions[-1]
            if alias not in versions:
                raise DanglingReference(
                    f"latest alias of model {name!r} points at "
                    f"v{alias:04d}, which no longer exists "
                    f"(published: {versions}); re-publish, evict via the "
                    "registry, or delete the alias file to repair"
                )
            return alias
        if isinstance(version, str):
            match = _VERSION_RE.match(version)
            if match:
                version = int(match.group(1))
            else:
                try:
                    version = int(version)
                except ValueError:
                    raise ArtifactError(
                        f"bad version {version!r} for model {name!r}"
                    ) from None
        if version not in versions:
            raise ArtifactError(
                f"model {name!r} has no version {version} "
                f"(published: {versions})"
            )
        return version

    def inspect(self, name: str, version: "int | str" = LATEST) -> dict:
        """The manifest of ``name@version`` plus registry coordinates."""
        resolved = self.resolve(name, version)
        manifest = read_manifest(self.version_dir(name, resolved))
        return {"name": name, "version": resolved,
                "path": str(self.version_dir(name, resolved)), **manifest}

    def describe(self) -> list:
        """One summary row per model (for ``repro serve list``)."""
        rows = []
        for name in self.models():
            versions = self.versions(name)
            latest = self.resolve(name)
            manifest = read_manifest(self.version_dir(name, latest))
            rows.append({
                "name": name,
                "versions": len(versions),
                "latest": latest,
                "method": manifest.get("method"),
                "labels": len(manifest.get("labels") or []),
                "quantize": manifest.get("quantize") or "-",
                "created": manifest.get("created"),
            })
        return rows

    # -- mutation ------------------------------------------------------------
    def publish(self, name: str, model, *,
                provenance: "dict | None" = None,
                quantize: "str | None" = None,
                probe=None,
                max_accuracy_delta: "float | None" = None) -> int:
        """Export fitted ``model`` as the next version of ``name``.

        Returns the assigned version number. The version directory is
        written atomically, so concurrent readers either see the previous
        ``latest`` or the complete new one. ``quantize``/``probe``/
        ``max_accuracy_delta`` pass through to
        :func:`~repro.serve.artifacts.export_artifact`; a quantized
        publish that fails the accuracy-delta gate assigns no version.
        """
        _check_name(name)
        versions = self.versions(name)
        version = (versions[-1] + 1) if versions else 1
        target = self.version_dir(name, version)
        target.parent.mkdir(parents=True, exist_ok=True)
        kwargs = {}
        if quantize is not None:
            kwargs["quantize"] = quantize
            kwargs["probe"] = probe
            if max_accuracy_delta is not None:
                kwargs["max_accuracy_delta"] = max_accuracy_delta
        export_artifact(model, target, provenance=provenance, **kwargs)
        self._write_alias(name, version)
        return version

    def load(self, name: str, version: "int | str" = LATEST,
             verify: bool = True) -> ServableModel:
        """Load ``name@version`` (digest-verified by default)."""
        resolved = self.resolve(name, version)
        return load_artifact(self.version_dir(name, resolved), verify=verify)

    def evict(self, name: str, version: "int | str | None" = None) -> list:
        """Delete one version (or, with ``version=None``, every version).

        Returns the version numbers removed. Evicting the version the
        ``latest`` alias points at repoints it to the newest remaining
        version; evicting the last version removes the model (alias
        included), so the alias never dangles.
        """
        if version is None:
            removed = self.versions(name)
            if removed:
                shutil.rmtree(self.model_dir(name))
            return removed
        resolved = self.resolve(name, version)
        alias = self._read_alias(name)
        shutil.rmtree(self.version_dir(name, resolved))
        remaining = self.versions(name)
        if not remaining:
            shutil.rmtree(self.model_dir(name), ignore_errors=True)
        elif alias == resolved:
            self._write_alias(name, remaining[-1])
        return [resolved]

    def __repr__(self) -> str:
        return f"ModelRegistry(root={str(self.root)!r})"
