"""Stdlib JSON/HTTP front door over a replica pool.

A thin :class:`http.server.ThreadingHTTPServer` that maps the pool's
typed failure modes onto HTTP status codes — the wire contract of the
serving layer:

==========  ===========================================  ==============
endpoint    body                                         status
==========  ===========================================  ==============
POST
/classify   ``{"docs": [...], "deadline_s": 0.5?}`` →    200 ``{"labels": [...]}``
            malformed JSON / missing docs                400 ``{"error": "bad-request"}``
            pool sheds (every replica full)              429 ``{"error": "overloaded"}`` (+ ``Retry-After``)
            deadline passed before serving               504 ``{"error": "deadline-exceeded"}``
            pool closed / every replica dead             503 ``{"error": "unavailable"}``
            model raised                                 500 ``{"error": "internal"}``
GET
/healthz    ``{"status": "ok", "alive": N}``             200 (503 once unservable)
GET /stats  pool counters + per-replica engine stats     200
==========  ===========================================  ==============

``docs`` entries are raw strings or token lists (same payloads
``ServingEngine`` takes). Each connection is handled on its own thread;
concurrency then flows through the pool's least-loaded dispatch, so the
HTTP layer adds no queueing of its own.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.exceptions import (
    DeadlineExceeded,
    Overloaded,
    ReproError,
    ServingError,
)

#: Bound accepted request bodies (64 MiB): the front door should shed
#: absurd payloads before json-decoding them into memory.
MAX_BODY_BYTES = 64 << 20


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # The default handler logs every request to stderr; the pool CLI
    # owns the terminal, so stay quiet.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _reply(self, status: int, payload: dict,
               headers: "dict | None" = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        pool = self.server.pool
        if self.path == "/healthz":
            alive = pool.alive_count()
            if alive > 0:
                self._reply(200, {"status": "ok", "alive": alive})
            else:
                self._reply(503, {"status": "unavailable", "alive": 0})
        elif self.path == "/stats":
            self._reply(200, pool.stats(refresh=True))
        else:
            self._reply(404, {"error": "not-found", "path": self.path})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/classify":
            self._reply(404, {"error": "not-found", "path": self.path})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._reply(400, {"error": "bad-request",
                              "detail": "missing or oversized body"})
            return
        try:
            payload = json.loads(self.rfile.read(length) or b"null")
        except ValueError as exc:
            self._reply(400, {"error": "bad-request",
                              "detail": f"invalid JSON: {exc}"})
            return
        if not isinstance(payload, dict) or not isinstance(
                payload.get("docs"), list) or not payload["docs"]:
            self._reply(400, {"error": "bad-request",
                              "detail": "body must be an object with a "
                                        "non-empty 'docs' array"})
            return
        deadline_s = payload.get("deadline_s")
        if deadline_s is not None and not isinstance(deadline_s,
                                                     (int, float)):
            self._reply(400, {"error": "bad-request",
                              "detail": "'deadline_s' must be a number"})
            return
        try:
            labels = self.server.pool.classify(
                payload["docs"], deadline_s=deadline_s,
                timeout=payload.get("timeout_s"))
        except Overloaded as exc:
            self._reply(429, {"error": "overloaded", "detail": str(exc)},
                        headers={"Retry-After": "1"})
        except DeadlineExceeded as exc:
            self._reply(504, {"error": "deadline-exceeded",
                              "detail": str(exc)})
        except (ServingError, TimeoutError) as exc:
            self._reply(503, {"error": "unavailable", "detail": str(exc)})
        except ReproError as exc:
            self._reply(500, {"error": "internal",
                              "type": type(exc).__name__,
                              "detail": str(exc)})
        except Exception as exc:  # model/transport zoo: stay serving
            self._reply(500, {"error": "internal",
                              "type": type(exc).__name__,
                              "detail": str(exc)})
        else:
            labels = [list(l) if isinstance(l, (tuple, set, frozenset))
                      else l for l in labels]
            self._reply(200, {"labels": labels})


class PoolServer:
    """HTTP front end bound to a :class:`~repro.serve.pool.ReplicaPool`.

    ``port=0`` binds an ephemeral port (read :attr:`address` after
    construction). The server thread is a daemon; :meth:`close` shuts
    it down without touching the pool (the caller owns pool lifecycle).
    """

    def __init__(self, pool, host: str = "127.0.0.1", port: int = 0):
        self.pool = pool
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.pool = pool
        self._thread: "threading.Thread | None" = None
        self._serving = False

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)``."""
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "PoolServer":
        """Serve on a background daemon thread; returns self."""
        if self._thread is not None:
            raise ServingError("server already started")
        self._serving = True
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        kwargs={"poll_interval": 0.1},
                                        daemon=True, name="repro-pool-http")
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's blocking mode)."""
        self._serving = True
        self._server.serve_forever(poll_interval=0.1)

    def close(self) -> None:
        """Stop accepting and release the socket (idempotent)."""
        if self._serving:
            # shutdown() blocks on serve_forever's exit handshake and
            # would hang forever if the loop never started.
            self._serving = False
            self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None

    def __enter__(self) -> "PoolServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
