"""Shared-memory publication of PLM weight arrays for the replica pool.

One host, N replica processes, one weight set: the pool parent reads an
artifact's PLM archives once (:func:`repro.plm.io.read_plm_arrays`),
copies every parameter array into a single
:class:`multiprocessing.shared_memory.SharedMemory` segment per archive,
and ships only a small *spec* dict (segment name + per-array offset/
shape/dtype) to the workers. Each worker maps the segment and rebuilds
its encoder over zero-copy numpy views
(:func:`repro.plm.io.build_plm` with ``copy=False``), so replica RAM
cost is page-table entries, not weights.

Layout: arrays are packed C-contiguous at 64-byte-aligned offsets (so
the packed-inference path's ``np.ascontiguousarray`` snapshots are
no-ops and BLAS sees aligned rows). Views are marked read-only —
inference never writes weights, and an accidental write would corrupt
every replica at once.

Ownership and cleanup: the creating process owns the segment and is the
only one that ``unlink``\\ s it (on :meth:`SharedArrays.close`, or at
interpreter exit via an ``atexit`` sweep as a crash backstop). Pool
workers are *spawned children* of the publisher, so they share its
``resource_tracker`` process: their attach-side registration is a
duplicate entry in the same tracker set (a no-op), worker exits never
trigger tracker cleanup, and if the publisher dies without closing, the
shared tracker unlinks the segment itself — a second backstop. POSIX
keeps an unlinked segment alive until the last map drops, so the parent
can unlink even while workers (or their corpses) still hold mappings.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from multiprocessing import shared_memory

import numpy as np

from repro.core.exceptions import ServingError

#: Offset alignment for every array in a segment (cache line / AVX-512).
ALIGN = 64

_LIVE_LOCK = threading.Lock()
#: Segment names created (and therefore owned) by this process.
_LIVE_OWNED: "set[str]" = set()


def _align(offset: int) -> int:
    return (offset + ALIGN - 1) & ~(ALIGN - 1)


@atexit.register
def _cleanup_owned() -> None:
    """Unlink any still-live owned segments at interpreter exit."""
    with _LIVE_LOCK:
        names = list(_LIVE_OWNED)
        _LIVE_OWNED.clear()
    for name in names:
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


class SharedArrays:
    """A list of numpy arrays living in one shared-memory segment.

    Built by :func:`publish_arrays` (owner side) or
    :func:`attach_arrays` (worker side). ``arrays`` holds read-only
    views over the segment in publication order; ``spec`` is the
    picklable description workers attach from.
    """

    def __init__(self, segment: shared_memory.SharedMemory, spec: dict,
                 owner: bool):
        self._segment = segment
        self.spec = spec
        self.owner = owner
        self._closed = False
        self.arrays = []
        for entry in spec["arrays"]:
            view = np.ndarray(tuple(entry["shape"]),
                              dtype=np.dtype(entry["dtype"]),
                              buffer=segment.buf, offset=entry["offset"])
            view.flags.writeable = False
            self.arrays.append(view)

    @property
    def name(self) -> str:
        return self.spec["name"]

    @property
    def nbytes(self) -> int:
        return self.spec["nbytes"]

    def close(self) -> None:
        """Drop the views and the mapping; the owner also unlinks.

        Idempotent. Owner close is the reference-count release: POSIX
        destroys the segment once every other attached process exits
        (cleanly or not), so a worker crash cannot leak it.
        """
        if self._closed:
            return
        self._closed = True
        self.arrays = []
        try:
            self._segment.close()
        except BufferError:
            # A still-exported view (e.g. captured by a PackedEncoder in
            # this process) pins the mapping; the unlink below still
            # removes the name, and the mapping dies with the process.
            pass
        if self.owner:
            with _LIVE_LOCK:
                _LIVE_OWNED.discard(self.name)
            try:
                self._segment.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedArrays":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return (f"SharedArrays(name={self.name!r}, "
                f"n={len(self.spec['arrays'])}, nbytes={self.nbytes}, "
                f"owner={self.owner})")


def publish_arrays(arrays: list, label: str = "plm") -> SharedArrays:
    """Copy ``arrays`` into a fresh shared-memory segment (owner side).

    The segment name embeds the pid and random bits, so concurrent pools
    on one host never collide. Returns the owning handle; pass
    ``handle.spec`` (picklable) to workers for :func:`attach_arrays`.
    """
    entries = []
    offset = 0
    for array in arrays:
        array = np.ascontiguousarray(array)
        offset = _align(offset)
        entries.append({"offset": offset, "shape": list(array.shape),
                        "dtype": str(array.dtype)})
        offset += array.nbytes
    nbytes = max(offset, 1)  # zero-size segments are not portable
    name = f"repro-{label}-{os.getpid()}-{secrets.token_hex(4)}"
    try:
        segment = shared_memory.SharedMemory(name=name, create=True,
                                             size=nbytes)
    except OSError as exc:
        raise ServingError(
            f"cannot create shared-memory segment {name!r} "
            f"({nbytes} bytes): {exc}"
        ) from exc
    with _LIVE_LOCK:
        _LIVE_OWNED.add(segment.name)
    for array, entry in zip(arrays, entries):
        target = np.ndarray(array.shape, dtype=array.dtype,
                            buffer=segment.buf, offset=entry["offset"])
        target[...] = array
        del target  # release the exported buffer before any close()
    spec = {"name": segment.name, "nbytes": nbytes, "arrays": entries}
    return SharedArrays(segment, spec, owner=True)


def attach_arrays(spec: dict) -> SharedArrays:
    """Map an existing segment described by ``spec`` (worker side).

    Attaching registers the name with ``resource_tracker`` a second
    time; because pool workers share the publisher's tracker process
    that is a set-level no-op, and the publishing process keeps sole
    ownership of the unlink.
    """
    try:
        segment = shared_memory.SharedMemory(name=spec["name"])
    except FileNotFoundError:
        raise ServingError(
            f"shared-memory segment {spec['name']!r} does not exist "
            "(pool closed or publisher died?)"
        ) from None
    return SharedArrays(segment, spec, owner=False)
