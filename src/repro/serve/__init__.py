"""Model serving layer: artifact store, versioned registry, micro-batcher.

Training a weakly-supervised method is minutes-scale; classifying with a
trained one is milliseconds-scale. This package splits the two so trained
pipelines can be persisted, named, and served:

- :mod:`repro.serve.artifacts` — predict-only snapshots of fitted
  methods (PLM weights via :mod:`repro.plm.io`, method state, label
  space), written atomically with a schema version and content digest;
- :mod:`repro.serve.registry` — named models with monotonically
  increasing versions under ``REPRO_MODEL_DIR``, ``latest`` alias, and
  digest verification on load;
- :mod:`repro.serve.engine` — a thread-safe micro-batching server that
  coalesces concurrent classify requests into the PLM engine's batched
  encode path, with deadlines and load-shedding backpressure;
- :mod:`repro.serve.pool` — a multi-process replica pool: N worker
  engines over one shared-memory weight set (:mod:`repro.serve.shm`),
  least-loaded dispatch, typed cross-process error propagation;
- :mod:`repro.serve.http` — the stdlib JSON/HTTP front door over a pool
  (``/classify`` with 429/504 backpressure codes, ``/healthz``,
  ``/stats``).

CLI: ``python -m repro serve export|list|inspect|predict|pool|evict``.
"""

from repro.serve.artifacts import (
    ARTIFACT_SCHEMA,
    ServableModel,
    as_corpus,
    export_artifact,
    load_artifact,
    read_manifest,
)
from repro.serve.engine import ServeConfig, ServingEngine
from repro.serve.http import PoolServer
from repro.serve.pool import PoolConfig, PoolRequest, ReplicaPool
from repro.serve.registry import ModelRegistry
from repro.serve.shm import SharedArrays, attach_arrays, publish_arrays

__all__ = [
    "ARTIFACT_SCHEMA",
    "ServableModel",
    "as_corpus",
    "export_artifact",
    "load_artifact",
    "read_manifest",
    "ModelRegistry",
    "ServeConfig",
    "ServingEngine",
    "PoolConfig",
    "PoolRequest",
    "PoolServer",
    "ReplicaPool",
    "SharedArrays",
    "attach_arrays",
    "publish_arrays",
]
