"""Model serving layer: artifact store, versioned registry, micro-batcher.

Training a weakly-supervised method is minutes-scale; classifying with a
trained one is milliseconds-scale. This package splits the two so trained
pipelines can be persisted, named, and served:

- :mod:`repro.serve.artifacts` — predict-only snapshots of fitted
  methods (PLM weights via :mod:`repro.plm.io`, method state, label
  space), written atomically with a schema version and content digest;
- :mod:`repro.serve.registry` — named models with monotonically
  increasing versions under ``REPRO_MODEL_DIR``, ``latest`` alias, and
  digest verification on load;
- :mod:`repro.serve.engine` — a thread-safe micro-batching server that
  coalesces concurrent classify requests into the PLM engine's batched
  encode path, with deadlines and load-shedding backpressure.

CLI: ``python -m repro serve export|list|inspect|predict|evict``.
"""

from repro.serve.artifacts import (
    ARTIFACT_SCHEMA,
    ServableModel,
    as_corpus,
    export_artifact,
    load_artifact,
    read_manifest,
)
from repro.serve.engine import ServeConfig, ServingEngine
from repro.serve.registry import ModelRegistry

__all__ = [
    "ARTIFACT_SCHEMA",
    "ServableModel",
    "as_corpus",
    "export_artifact",
    "load_artifact",
    "read_manifest",
    "ModelRegistry",
    "ServeConfig",
    "ServingEngine",
]
