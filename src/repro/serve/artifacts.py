"""Predict-only snapshots of fitted methods (the artifact store).

An artifact is a directory holding everything ``predict`` needs and
nothing ``fit`` needed:

- ``manifest.json`` — schema version, method identity, label space,
  per-file SHA-256 digests plus a combined content digest, and free-form
  provenance (dataset profile, seed, config);
- ``plm_<i>.npz`` — one archive per distinct
  :class:`~repro.plm.model.PretrainedLM` reachable from the method,
  written by :func:`repro.plm.io.save_plm` (dtype-faithful, bit-exact);
- ``state.pkl`` — the fitted method object with every PLM (and encode
  cache) swapped out via pickle persistent ids, so the heavy weights
  live in the npz archives and process-local caches never serialize.

``export_artifact(..., quantize="int8"|"float16")`` writes the PLM
archives in a quantized predict-only format (see :mod:`repro.plm.io`).
Because quantization is lossy, the export runs an **accuracy-delta
gate**: the quantized artifact is reloaded from the staging directory,
both models predict a caller-supplied probe corpus, and the export is
refused (:class:`ArtifactError`, nothing published) if macro-F1 between
the two prediction sets drops more than ``max_accuracy_delta``
percentage points. The measured delta is recorded in the manifest under
``quantize_check``.

Writes are atomic: the directory is assembled under a temp name and
renamed into place, so readers never observe a half-written artifact.
Loads verify digests by default and raise
:class:`~repro.core.exceptions.ArtifactError` naming the offending file
for any corruption — never a bare pickle/numpy error.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import shutil
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.core.base import MultiLabelTextClassifier
from repro.core.enc_cache import EncodeCache
from repro.core.exceptions import ArtifactError
from repro.core.types import Corpus, Document
from repro.plm.io import QUANTIZE_MODES, load_plm, save_plm
from repro.plm.model import PretrainedLM

ARTIFACT_SCHEMA = 1
MANIFEST = "manifest.json"
STATE = "state.pkl"

#: Default accuracy-delta gate: quantized predictions may diverge from
#: full-precision ones by at most this many macro-F1 percentage points.
DEFAULT_MAX_ACCURACY_DELTA = 0.5


def as_corpus(docs, name: str = "request") -> Corpus:
    """Coerce request payloads into a :class:`Corpus`.

    Accepts a ready corpus, an iterable of raw strings, or an iterable
    of token lists; strings tokenize through the default tokenizer.
    """
    if isinstance(docs, Corpus):
        return docs
    documents = []
    for i, doc in enumerate(docs):
        if isinstance(doc, Document):
            documents.append(Document(doc_id=f"{name}-{i}", text=doc.text,
                                      tokens=list(doc.tokens)))
        elif isinstance(doc, str):
            documents.append(Document(doc_id=f"{name}-{i}", text=doc))
        else:
            documents.append(Document(doc_id=f"{name}-{i}",
                                      tokens=[str(t) for t in doc]))
    return Corpus(documents, name=name)


# ---------------------------------------------------------------------------
# PLM-aware pickling
# ---------------------------------------------------------------------------

class _ExportPickler(pickle.Pickler):
    """Pickler that externalizes PLMs and drops process-local caches."""

    def __init__(self, file, plms: list):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._plms = plms
        self._index: dict[int, int] = {}

    def persistent_id(self, obj):
        if isinstance(obj, PretrainedLM):
            key = id(obj)
            if key not in self._index:
                self._index[key] = len(self._plms)
                self._plms.append(obj)
            return ("repro.plm", self._index[key])
        if isinstance(obj, EncodeCache):
            # Caches are process-local working state, not model state.
            return ("repro.enc_cache", None)
        return None


class _ImportUnpickler(pickle.Unpickler):
    """Unpickler resolving persistent ids back to freshly loaded PLMs."""

    def __init__(self, file, plms: list):
        super().__init__(file)
        self._plms = plms

    def persistent_load(self, pid):
        kind, index = pid
        if kind == "repro.plm":
            return self._plms[index]
        if kind == "repro.enc_cache":
            from repro.plm.provider import shared_encode_cache

            return shared_encode_cache()
        raise ArtifactError(f"unknown persistent id {pid!r} in artifact state")


# ---------------------------------------------------------------------------
# Digests
# ---------------------------------------------------------------------------

def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _combined_digest(files: dict) -> str:
    digest = hashlib.sha256()
    for name in sorted(files):
        digest.update(f"{name}:{files[name]['sha256']}\n".encode())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Quantization gate
# ---------------------------------------------------------------------------

def _multilabel_kinds(preds: list) -> set:
    """``{"multi"}``, ``{"single"}``, or both, over one prediction list.

    Label *sets* (tuples/lists/sets of labels) are "multi"; bare labels
    (strings/ints) are "single". Strings are iterable but must never be
    treated as label collections — iterating one silently scores its
    characters.
    """
    kinds = set()
    for pred in preds:
        if isinstance(pred, (tuple, list, set, frozenset)):
            kinds.add("multi")
        else:
            kinds.add("single")
    return kinds


def _prediction_delta(ref_preds: list, quant_preds: list) -> float:
    """Macro-F1 divergence, in percentage points, between two predictions.

    The full-precision predictions act as gold; 0.0 means the quantized
    model predicts identically on the probe set. Multi-label predictions
    (tuples/lists of labels) are scored as per-label binary F1 averaged
    over the union of predicted labels. Mixing single- and multi-label
    predictions — within either list, or between the reference and the
    quantized model — is refused: it means the quantized reload changed
    the model's prediction *shape*, which no F1 number can paper over.
    """
    from repro.evaluation.metrics import macro_f1

    if not ref_preds:
        return 0.0
    kinds = _multilabel_kinds(ref_preds) | _multilabel_kinds(quant_preds)
    if len(kinds) > 1:
        raise ArtifactError(
            "quantization gate cannot compare predictions of mixed "
            "arity: reference and quantized models must both return "
            "label sets (multi-label) or both return bare labels "
            "(single-label). Re-export with a probe matching the "
            "model's prediction contract, or fix the model reload."
        )
    if kinds == {"multi"}:
        labels = sorted({l for p in ref_preds for l in p}
                        | {l for p in quant_preds for l in p})
        if not labels:
            return 0.0
        f1s = []
        for label in labels:
            gold = [int(label in p) for p in ref_preds]
            pred = [int(label in p) for p in quant_preds]
            f1s.append(macro_f1(gold, pred, labels=[1]))
        score = float(np.mean(np.asarray(f1s, dtype=np.float64)))
    else:
        score = macro_f1(list(ref_preds), list(quant_preds))
    return (1.0 - score) * 100.0


def _reload_from_staging(tmp: Path, plm_files: list):
    """The quantized clone of the staged model (plms + state re-read)."""
    plms = [load_plm(tmp / name) for name in plm_files]
    with open(tmp / STATE, "rb") as fh:
        return _ImportUnpickler(fh, plms).load()


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------

def export_artifact(model, path: "str | Path", *,
                    provenance: "dict | None" = None,
                    overwrite: bool = False,
                    quantize: "str | None" = None,
                    probe=None,
                    max_accuracy_delta: "float | None" = DEFAULT_MAX_ACCURACY_DELTA) -> Path:
    """Snapshot fitted ``model`` into artifact directory ``path``.

    ``model`` is any fitted classifier with ``predict`` (the
    :mod:`repro.core.base` contract). ``provenance`` is recorded verbatim
    in the manifest (dataset profile, seed, config — anything that lets a
    reader re-derive the training run).

    ``quantize`` writes the PLM archives in a lossy predict-only format
    (``"int8"`` or ``"float16"``). A quantized export must pass the
    accuracy-delta gate: ``probe`` (a corpus, strings, or token lists of
    held-out documents) is predicted by both the full-precision model
    and the staged quantized artifact, and the export raises
    :class:`ArtifactError` — publishing nothing — if macro-F1 between
    the two drops more than ``max_accuracy_delta`` percentage points.
    Passing ``max_accuracy_delta=None`` explicitly skips the gate (the
    manifest then records no ``quantize_check``).
    """
    path = Path(path)
    if quantize is not None and quantize not in QUANTIZE_MODES:
        raise ArtifactError(
            f"unknown quantize mode {quantize!r} "
            f"(expected one of {QUANTIZE_MODES})"
        )
    if quantize is not None and max_accuracy_delta is not None and probe is None:
        raise ArtifactError(
            "quantized export requires a probe corpus for the "
            "accuracy-delta gate (or max_accuracy_delta=None to opt out)"
        )
    if path.exists():
        if not overwrite:
            raise ArtifactError(f"artifact {path} already exists")
        shutil.rmtree(path)
    fitted = getattr(model, "_fitted", True)
    if not fitted:
        raise ArtifactError(
            f"refusing to export unfitted model {type(model).__name__}"
        )

    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir(parents=True)
    try:
        with obs.span("serve:export", method=type(model).__name__,
                      quantize=quantize or "none"):
            plms: list[PretrainedLM] = []
            buffer = io.BytesIO()
            _ExportPickler(buffer, plms).dump(model)
            (tmp / STATE).write_bytes(buffer.getvalue())
            plm_files = []
            for i, plm in enumerate(plms):
                plm_files.append(f"plm_{i}.npz")
                save_plm(plm, tmp / f"plm_{i}.npz", quantize=quantize)

            quantize_check = None
            if quantize is not None and max_accuracy_delta is not None:
                probe_corpus = as_corpus(probe, name="probe")
                if len(probe_corpus) == 0:
                    raise ArtifactError(
                        "quantized export probe corpus is empty"
                    )
                staged = _reload_from_staging(tmp, plm_files)
                ref_preds = model.predict(probe_corpus)
                quant_preds = staged.predict(probe_corpus)
                delta = _prediction_delta(list(ref_preds), list(quant_preds))
                if delta > max_accuracy_delta:
                    raise ArtifactError(
                        f"refusing to publish {quantize} artifact: "
                        f"accuracy delta {delta:.2f} macro-F1 points on "
                        f"{len(probe_corpus)} probe docs exceeds the "
                        f"{max_accuracy_delta:.2f}-point gate"
                    )
                quantize_check = {
                    "probe_docs": len(probe_corpus),
                    "max_accuracy_delta": float(max_accuracy_delta),
                    "accuracy_delta": round(float(delta), 4),
                }
                obs.count("serve.quantize_gate_passed")

            files = {}
            for name in [STATE, *plm_files]:
                file_path = tmp / name
                files[name] = {"sha256": _sha256(file_path),
                               "bytes": file_path.stat().st_size}
            label_set = getattr(model, "label_set", None)
            manifest = {
                "schema": ARTIFACT_SCHEMA,
                "kind": "repro.serve.artifact",
                "method": type(model).__name__,
                "method_module": type(model).__module__,
                "multi_label": isinstance(model, MultiLabelTextClassifier),
                "labels": list(label_set.labels) if label_set is not None else None,
                "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
                "plms": plm_files,
                "quantize": quantize,
                "quantize_check": quantize_check,
                "files": files,
                "digest": _combined_digest(files),
                "provenance": dict(provenance or {}),
            }
            (tmp / MANIFEST).write_text(json.dumps(manifest, indent=2,
                                                   sort_keys=True) + "\n")
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            shutil.rmtree(tmp)
    obs.count("serve.exports")
    return path


# ---------------------------------------------------------------------------
# Load
# ---------------------------------------------------------------------------

def read_manifest(path: "str | Path") -> dict:
    """The parsed, schema-checked manifest of artifact ``path``."""
    path = Path(path)
    manifest_path = path / MANIFEST
    if not manifest_path.exists():
        raise ArtifactError(f"{manifest_path} does not exist "
                            "(not an artifact directory?)")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (ValueError, OSError) as exc:
        raise ArtifactError(f"{manifest_path} is unreadable: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("kind") != "repro.serve.artifact":
        raise ArtifactError(f"{manifest_path} is not a repro model manifest")
    schema = manifest.get("schema")
    if schema != ARTIFACT_SCHEMA:
        raise ArtifactError(
            f"{manifest_path} has schema {schema!r}; this build reads "
            f"schema {ARTIFACT_SCHEMA}"
        )
    return manifest


def verify_artifact(path: "str | Path", manifest: "dict | None" = None) -> dict:
    """Check every payload file of ``path`` against its recorded digest.

    Returns the manifest; raises :class:`ArtifactError` naming the first
    missing or tampered file.
    """
    path = Path(path)
    manifest = manifest or read_manifest(path)
    files = manifest.get("files", {})
    for name, meta in files.items():
        file_path = path / name
        if not file_path.exists():
            raise ArtifactError(f"artifact file {file_path} is missing")
        actual = _sha256(file_path)
        if actual != meta.get("sha256"):
            raise ArtifactError(
                f"digest mismatch for {file_path}: manifest records "
                f"{meta.get('sha256')!r}, file hashes {actual!r}"
            )
    if manifest.get("digest") != _combined_digest(files):
        raise ArtifactError(
            f"combined content digest mismatch in {path / MANIFEST}"
        )
    return manifest


class ServableModel:
    """A loaded artifact: the fitted method plus its manifest.

    ``predict``/``scores`` accept raw strings, token lists, or a
    :class:`Corpus`; single- and multi-label methods are served through
    the same surface (the manifest records which one this is).
    """

    def __init__(self, model, manifest: dict, path: "Path | None" = None):
        self.model = model
        self.manifest = manifest
        self.path = path

    @property
    def labels(self) -> "list | None":
        return self.manifest.get("labels")

    @property
    def multi_label(self) -> bool:
        return bool(self.manifest.get("multi_label"))

    @property
    def quantize(self) -> "str | None":
        """Weight format of the artifact (``int8``/``float16``/None)."""
        return self.manifest.get("quantize")

    def predict(self, docs) -> list:
        """Predicted label (or label tuple, multi-label) per document."""
        return self.model.predict(as_corpus(docs))

    def scores(self, docs) -> np.ndarray:
        """(n_docs, n_labels) probabilities / relevance scores."""
        corpus = as_corpus(docs)
        if self.multi_label:
            return self.model.score(corpus)
        return self.model.predict_proba(corpus)

    def warmup(self) -> None:
        """One throwaway predict so first real requests skip lazy init."""
        with obs.span("serve:warmup", method=self.manifest.get("method")):
            self.predict([["warmup"]])

    def __repr__(self) -> str:
        return (f"ServableModel(method={self.manifest.get('method')}, "
                f"labels={len(self.labels or [])})")


def load_artifact(path: "str | Path", verify: bool = True) -> ServableModel:
    """Reconstruct the fitted method snapshotted at ``path``.

    With ``verify`` (the default) every payload file is digest-checked
    first, so a flipped bit fails loudly as :class:`ArtifactError` before
    any bytes are unpickled.
    """
    path = Path(path)
    with obs.span("serve:load", artifact=str(path)):
        manifest = read_manifest(path)
        if verify:
            verify_artifact(path, manifest)
        plms = []
        for name in manifest.get("plms", []):
            plms.append(load_plm(path / name))
        state_path = path / STATE
        try:
            with open(state_path, "rb") as fh:
                model = _ImportUnpickler(fh, plms).load()
        except ArtifactError:
            raise
        except FileNotFoundError:
            raise ArtifactError(f"artifact file {state_path} is missing") from None
        except Exception as exc:  # pickle raises a zoo of types on bad bytes
            raise ArtifactError(
                f"artifact state {state_path} is corrupt: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
    obs.count("serve.loads")
    return ServableModel(model, manifest, path=path)
