"""Multi-process replica pool over shared-memory PLM weights.

The single-process :class:`~repro.serve.engine.ServingEngine` tops out
at one core: its batcher thread serializes every predict. The pool
scales that out by running N worker *processes*, each with its own
micro-batching engine over the same registry artifact, behind a
least-loaded dispatcher in the parent:

- the parent reads each PLM archive **once**
  (:func:`repro.plm.io.read_plm_arrays`), publishes the weight arrays
  into shared memory (:mod:`repro.serve.shm`), and spawns workers that
  rebuild their encoders as zero-copy views over the shared buffers
  (:func:`repro.plm.io.build_plm` with ``copy=False``) — N replicas
  cost one weight-set of RAM;
- requests go to the live replica with the fewest in-flight requests;
  when every replica is at ``max_queue`` the submit sheds with
  :class:`~repro.core.exceptions.Overloaded` (same backpressure
  contract as the single engine, enforced at admission);
- worker-raised errors travel back *typed*: ``Overloaded``,
  ``DeadlineExceeded``, and friends re-raise as themselves in the
  caller; a crashed worker fails its in-flight requests with
  :class:`~repro.core.exceptions.ServingError` and is removed from
  rotation (remaining replicas keep serving);
- shutdown drains every worker engine (each request resolves exactly
  once), then closes + unlinks the shared segments — the unlink runs in
  a ``finally``, so even a worker crash leaves no ``/dev/shm`` litter.

Dispatch preserves the single-engine result contract: each worker's
engine batches FIFO and predictions are order-aligned per request, so a
pool ``classify`` returns bit-identical labels to a lone
``ServingEngine`` over the same artifact.

Instrumentation (:mod:`repro.obs`): parent-side ``pool.requests`` /
``pool.shed`` / ``pool.replica_deaths`` counters and a
``pool.replica_busy`` high-water gauge; worker tracers export through
the PR 4 worker boundary and are absorbed under ``pool/replica<i>`` at
close, so one trace shows every replica's ``serve:*`` spans.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
import time
from dataclasses import dataclass
from multiprocessing import get_context
from pathlib import Path

from repro import obs
from repro.core import exceptions as _exceptions
from repro.core.exceptions import (
    DeadlineExceeded,
    Overloaded,
    ServingError,
)
from repro.plm.io import build_plm, read_plm_arrays
from repro.serve.artifacts import (
    STATE,
    ServableModel,
    _ImportUnpickler,
    read_manifest,
    verify_artifact,
)
from repro.serve.engine import ServeConfig, ServingEngine
from repro.serve.shm import attach_arrays, publish_arrays


@dataclass(frozen=True)
class PoolConfig:
    """Replica-pool knobs.

    Parameters
    ----------
    replicas:
        Worker processes to spawn.
    max_queue:
        Per-replica in-flight bound enforced at admission; when every
        live replica is full, submits shed with ``Overloaded``.
    max_batch_docs / batch_window_s / default_deadline_s / warmup:
        Passed through to each worker's :class:`ServeConfig`.
    verify:
        Digest-verify the artifact once in the parent before publishing
        weights (workers trust the parent's check).
    start_timeout_s:
        How long to wait for every replica to load + warm up.
    """

    replicas: int = 2
    max_queue: int = 32
    max_batch_docs: int = 64
    batch_window_s: float = 0.002
    default_deadline_s: "float | None" = None
    warmup: bool = True
    verify: bool = True
    start_timeout_s: float = 120.0


class PoolRequest:
    """One in-flight pool request (a minimal cross-process future)."""

    __slots__ = ("docs", "result", "error", "_done", "created_at", "done_at")

    def __init__(self, docs: list):
        self.docs = docs
        self.result: "list | None" = None
        self.error: "Exception | None" = None
        self._done = threading.Event()
        self.created_at = time.monotonic()
        self.done_at: "float | None" = None

    def resolve(self, result: list) -> None:
        self.done_at = time.monotonic()
        self.result = result
        self._done.set()

    def fail(self, error: Exception) -> None:
        self.done_at = time.monotonic()
        self.error = error
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    @property
    def latency_s(self) -> "float | None":
        """Submit-to-completion wall clock (None while pending)."""
        if self.done_at is None:
            return None
        return self.done_at - self.created_at

    def wait(self, timeout: "float | None" = None) -> list:
        """Block for the result; re-raises the failure if the request died."""
        if not self._done.wait(timeout):
            raise TimeoutError("pool request still pending after "
                               f"{timeout}s (pool overloaded or closed?)")
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class _Replica:
    """Parent-side handle for one worker process."""

    __slots__ = ("index", "process", "conn", "send_lock", "in_flight",
                 "alive", "ready", "fatal", "receiver", "trace_payload",
                 "final_stats")

    def __init__(self, index: int, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        self.send_lock = threading.Lock()
        self.in_flight: "dict[int, PoolRequest]" = {}
        self.alive = True
        self.ready = threading.Event()
        self.fatal: "Exception | None" = None
        self.receiver: "threading.Thread | None" = None
        self.trace_payload: "dict | None" = None
        self.final_stats: "dict | None" = None

    def send(self, msg: tuple) -> None:
        with self.send_lock:
            self.conn.send(msg)


def _rebuild_error(kind: str, message: str) -> Exception:
    """Reconstruct a worker-raised exception from its (type name, str).

    Typed serving/artifact errors round-trip as themselves so callers
    keep one ``except Overloaded`` path for local and pooled engines;
    unknown types degrade to ``ServingError`` with the original name in
    the message.
    """
    cls = getattr(_exceptions, kind, None)
    if isinstance(cls, type) and issubclass(cls, _exceptions.ReproError):
        return cls(message)
    import builtins

    cls = getattr(builtins, kind, None)
    if isinstance(cls, type) and issubclass(cls, Exception):
        try:
            return cls(message)
        except Exception:
            pass
    return ServingError(f"{kind}: {message}")


def _pool_worker_main(replica_id: int, artifact_dir: str, shm_payloads: list,
                      manifest: dict, serve_kwargs: dict, trace: bool,
                      conn) -> None:
    """Worker entry point (spawn target; must stay module-level).

    Attaches the shared weight segments, rebuilds the servable model
    zero-copy, runs a private :class:`ServingEngine`, and speaks the
    pipe protocol: ``("req", id, docs, deadline)`` in; ``("ok"|"err",
    id, ...)`` out, answered FIFO by a responder thread (valid because
    the single batcher serves FIFO). Shutdown drains the engine, ships
    the worker trace, and exits.
    """
    try:
        if trace:
            obs.enable(f"replica{replica_id}")
        plms = []
        for item in shm_payloads:
            handle = attach_arrays(item["spec"])
            plms.append(build_plm(handle.arrays, item["meta"], copy=False))
        with open(Path(artifact_dir) / STATE, "rb") as fh:
            model = _ImportUnpickler(fh, plms).load()
        servable = ServableModel(model, manifest, path=Path(artifact_dir))
        engine = ServingEngine(servable, ServeConfig(**serve_kwargs))
    except BaseException as exc:
        try:
            conn.send(("fatal", type(exc).__name__, str(exc)))
        except OSError:
            pass
        return

    send_lock = threading.Lock()
    out_q: "queue.SimpleQueue" = queue.SimpleQueue()

    def _respond() -> None:
        while True:
            item = out_q.get()
            if item is None:
                return
            req_id, request = item
            try:
                result = request.wait()
            except Exception as exc:
                with send_lock:
                    conn.send(("err", req_id, type(exc).__name__, str(exc)))
            else:
                with send_lock:
                    conn.send(("ok", req_id, result))

    responder = threading.Thread(target=_respond, daemon=True,
                                 name=f"repro-pool-respond-{replica_id}")
    responder.start()
    with send_lock:
        conn.send(("ready", os.getpid()))
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "req":
                _, req_id, docs, deadline_s = msg
                try:
                    request = engine.submit(docs, deadline_s=deadline_s)
                except Exception as exc:
                    with send_lock:
                        conn.send(("err", req_id,
                                   type(exc).__name__, str(exc)))
                else:
                    out_q.put((req_id, request))
            elif kind == "stats":
                with send_lock:
                    conn.send(("stats_ok", msg[1], engine.stats()))
            elif kind == "shutdown":
                break
    finally:
        engine.close(drain=True)
        out_q.put(None)
        responder.join(30)
        if trace:
            tracer = obs.disable()
            if tracer is not None:
                with send_lock:
                    conn.send(("trace", tracer.export()))
        try:
            with send_lock:
                conn.send(("closed", engine.stats()))
        except OSError:
            pass
        conn.close()


class ReplicaPool:
    """N worker processes serving one artifact over shared weights.

    ``artifact`` is an artifact directory (as produced by
    :func:`~repro.serve.artifacts.export_artifact` or a registry version
    dir); use :meth:`from_registry` for ``name@version`` refs. The pool
    is ready (every replica loaded + warmed) when the constructor
    returns.
    """

    def __init__(self, artifact: "str | Path",
                 config: "PoolConfig | None" = None):
        self.path = Path(artifact)
        self.config = config or PoolConfig()
        if self.config.replicas < 1:
            raise ServingError("a pool needs at least one replica")
        self.manifest = read_manifest(self.path)
        if self.config.verify:
            verify_artifact(self.path, self.manifest)
        self._trace = obs.enabled()
        self._lock = threading.Lock()
        self._closed = False
        self._ids = itertools.count()
        self._stats = {"dispatched": 0, "completed": 0, "failed": 0,
                       "shed": 0, "deadline_miss": 0, "replica_deaths": 0,
                       "replica_busy_max": 0}
        self._shared = []
        self._replicas: "list[_Replica]" = []
        try:
            shm_payloads = []
            for name in self.manifest.get("plms", []):
                arrays, meta = read_plm_arrays(self.path / name)
                handle = publish_arrays(arrays, label=Path(name).stem)
                self._shared.append(handle)
                shm_payloads.append({"spec": handle.spec, "meta": meta})
                del arrays  # the segment holds the only copy now
            serve_kwargs = {
                "max_batch_docs": self.config.max_batch_docs,
                # Workers never shed on their own: the parent's
                # admission bound is the contract, so give the worker
                # queue headroom over it.
                "max_queue": max(8, 2 * self.config.max_queue),
                "batch_window_s": self.config.batch_window_s,
                "default_deadline_s": self.config.default_deadline_s,
                "warmup": self.config.warmup,
            }
            ctx = get_context("spawn")
            for i in range(self.config.replicas):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                process = ctx.Process(
                    target=_pool_worker_main,
                    args=(i, str(self.path), shm_payloads, self.manifest,
                          serve_kwargs, self._trace, child_conn),
                    daemon=True,
                    name=f"repro-pool-replica-{i}",
                )
                replica = _Replica(i, process, parent_conn)
                process.start()
                child_conn.close()
                replica.receiver = threading.Thread(
                    target=self._recv_loop, args=(replica,), daemon=True,
                    name=f"repro-pool-recv-{i}")
                replica.receiver.start()
                self._replicas.append(replica)
            self._await_ready()
        except BaseException:
            self.close(timeout=5.0)
            raise

    @classmethod
    def from_registry(cls, registry, name: str,
                      version: "int | str" = "latest",
                      config: "PoolConfig | None" = None) -> "ReplicaPool":
        """Pool over ``name@version`` from a :class:`ModelRegistry`."""
        resolved = registry.resolve(name, version)
        return cls(registry.version_dir(name, resolved), config=config)

    # -- startup -------------------------------------------------------------
    def _await_ready(self) -> None:
        deadline = time.monotonic() + self.config.start_timeout_s
        for replica in self._replicas:
            remaining = deadline - time.monotonic()
            if not replica.ready.wait(max(0.0, remaining)):
                raise ServingError(
                    f"replica {replica.index} failed to become ready "
                    f"within {self.config.start_timeout_s}s"
                )
            if replica.fatal is not None:
                raise ServingError(
                    f"replica {replica.index} failed to start: "
                    f"{replica.fatal}"
                )
            if not replica.alive:
                raise ServingError(
                    f"replica {replica.index} died during startup"
                )

    # -- receive path --------------------------------------------------------
    def _recv_loop(self, replica: _Replica) -> None:
        while True:
            try:
                msg = replica.conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "ok" or kind == "stats_ok":
                self._complete(replica, msg[1], result=msg[2])
            elif kind == "err":
                self._complete(replica, msg[1],
                               error=_rebuild_error(msg[2], msg[3]))
            elif kind == "ready":
                replica.ready.set()
            elif kind == "fatal":
                replica.fatal = _rebuild_error(msg[1], msg[2])
                replica.ready.set()
            elif kind == "trace":
                replica.trace_payload = msg[1]
            elif kind == "closed":
                replica.final_stats = msg[1]
        with self._lock:
            was_alive = replica.alive
            replica.alive = False
            pending = list(replica.in_flight.values())
            replica.in_flight.clear()
            clean = self._closed and not pending
            if was_alive and not clean:
                self._stats["replica_deaths"] += 1
            self._stats["failed"] += len(pending)
        replica.ready.set()
        if not clean:
            obs.count("pool.replica_deaths")
        error = ServingError(
            f"replica {replica.index} died with {len(pending)} "
            "request(s) in flight"
        )
        for request in pending:
            request.fail(error)

    def _complete(self, replica: _Replica, req_id: int,
                  result: "list | None" = None,
                  error: "Exception | None" = None) -> None:
        with self._lock:
            request = replica.in_flight.pop(req_id, None)
            if request is None:
                return
            if error is None:
                self._stats["completed"] += 1
            else:
                self._stats["failed"] += 1
                if isinstance(error, DeadlineExceeded):
                    self._stats["deadline_miss"] += 1
        if error is None:
            request.resolve(result)
        else:
            request.fail(error)

    # -- intake --------------------------------------------------------------
    def submit(self, docs, deadline_s: "float | None" = None) -> PoolRequest:
        """Dispatch ``docs`` to the least-loaded live replica.

        Raises :class:`Overloaded` when every live replica already holds
        ``max_queue`` in-flight requests, :class:`ServingError` when the
        pool is closed or every replica has died.
        """
        docs = list(docs)
        request = PoolRequest(docs)
        with self._lock:
            if self._closed:
                raise ServingError("replica pool is closed")
            live = [r for r in self._replicas if r.alive]
            if not live:
                raise ServingError(
                    "no live replicas (every worker died); "
                    "close the pool and restart"
                )
            replica = min(live, key=lambda r: (len(r.in_flight), r.index))
            if len(replica.in_flight) >= self.config.max_queue:
                self._stats["shed"] += 1
                obs.count("pool.shed")
                raise Overloaded(
                    f"all {len(live)} replica(s) at max_queue="
                    f"{self.config.max_queue}; retry later"
                )
            req_id = next(self._ids)
            replica.in_flight[req_id] = request
            self._stats["dispatched"] += 1
            busy = sum(1 for r in self._replicas if r.in_flight)
            if busy > self._stats["replica_busy_max"]:
                self._stats["replica_busy_max"] = busy
        obs.count("pool.requests")
        obs.gauge("pool.replica_busy", busy)
        try:
            replica.send(("req", req_id, docs, deadline_s))
        except (OSError, ValueError) as exc:
            self._complete(replica, req_id, error=ServingError(
                f"replica {replica.index} pipe broke: {exc}"))
            raise request.error from exc
        return request

    def classify(self, docs, deadline_s: "float | None" = None,
                 timeout: "float | None" = None) -> list:
        """Submit and block for the labels (convenience wrapper)."""
        return self.submit(docs, deadline_s=deadline_s).wait(timeout)

    # -- introspection -------------------------------------------------------
    @property
    def labels(self) -> "list | None":
        return self.manifest.get("labels")

    def alive_count(self) -> int:
        with self._lock:
            return sum(1 for r in self._replicas if r.alive)

    def shm_segments(self) -> list:
        """Names of the shared-memory segments this pool owns."""
        return [handle.name for handle in self._shared]

    def stats(self, refresh: bool = False) -> dict:
        """Pool counters + per-replica snapshot.

        With ``refresh``, also asks every live replica for its engine
        stats (``engines`` key), so ``/stats`` can show worker-side
        batching counters.
        """
        with self._lock:
            snapshot = dict(self._stats)
            snapshot["replicas"] = len(self._replicas)
            snapshot["alive"] = sum(1 for r in self._replicas if r.alive)
            snapshot["in_flight"] = sum(len(r.in_flight)
                                        for r in self._replicas)
            snapshot["per_replica"] = [
                {"replica": r.index, "alive": r.alive,
                 "in_flight": len(r.in_flight), "pid": r.process.pid}
                for r in self._replicas
            ]
            closed = self._closed
            live = [] if closed else [r for r in self._replicas if r.alive]
        if refresh and live:
            probes = []
            with self._lock:
                for replica in live:
                    req_id = next(self._ids)
                    probe = PoolRequest([])
                    replica.in_flight[req_id] = probe
                    probes.append((replica, req_id, probe))
            engines = []
            for replica, req_id, probe in probes:
                try:
                    replica.send(("stats", req_id))
                    engines.append({"replica": replica.index,
                                    **probe.wait(5.0)})
                except Exception as exc:
                    engines.append({"replica": replica.index,
                                    "error": str(exc)})
            snapshot["engines"] = engines
        return snapshot

    # -- lifecycle -----------------------------------------------------------
    def close(self, timeout: float = 30.0) -> None:
        """Drain and stop every replica, then unlink the shared weights.

        Safe to call twice and after worker crashes; the segment unlink
        runs unconditionally, so ``/dev/shm`` is clean as long as the
        parent reaches this method (an ``atexit`` sweep in
        :mod:`repro.serve.shm` backstops parents that never do).
        """
        with self._lock:
            already = self._closed
            self._closed = True
            replicas = list(self._replicas)
        if already and not self._shared and not replicas:
            return
        try:
            for replica in replicas:
                if replica.alive:
                    try:
                        replica.send(("shutdown",))
                    except (OSError, ValueError):
                        pass
            deadline = time.monotonic() + timeout
            for replica in replicas:
                remaining = max(0.1, deadline - time.monotonic())
                replica.process.join(remaining)
                if replica.process.is_alive():
                    replica.process.terminate()
                    replica.process.join(5.0)
            for replica in replicas:
                try:
                    replica.conn.close()
                except OSError:
                    pass
                if replica.receiver is not None:
                    replica.receiver.join(5.0)
            if self._trace and obs.enabled():
                tracer = obs.tracer()
                for replica in replicas:
                    if replica.trace_payload is not None:
                        tracer.absorb(replica.trace_payload,
                                      prefix=f"pool/replica{replica.index}")
                        replica.trace_payload = None
        finally:
            for handle in self._shared:
                handle.close()
            self._shared = []
            self._replicas = []
        # Anything still unresolved after the drain window (crashed or
        # wedged worker) must not hang its waiter forever.
        for replica in replicas:
            with self._lock:
                pending = list(replica.in_flight.values())
                replica.in_flight.clear()
            for request in pending:
                request.fail(ServingError(
                    f"pool closed with the request still pending on "
                    f"replica {replica.index}"))

    def __enter__(self) -> "ReplicaPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return (f"ReplicaPool(artifact={str(self.path)!r}, "
                f"replicas={self.config.replicas}, "
                f"alive={self.alive_count()})")
