"""Micro-batching serving engine with deadlines and backpressure.

Concurrent ``classify`` calls land in a bounded, thread-safe queue; a
single batcher thread drains it, coalescing adjacent requests into one
``predict`` over the concatenated documents. For PLM-backed methods that
one predict flows into the inference engine's length-bucketed
token-budget batches (:mod:`repro.plm.engine`), so N concurrent
one-document requests cost far fewer than N encoder batches.

State machine of a request:

- **queued** — accepted by :meth:`ServingEngine.submit`; the queue is
  bounded, and a full queue sheds the request with a typed
  :class:`~repro.core.exceptions.Overloaded` instead of blocking the
  submitter (backpressure);
- **batched** — the batcher popped it, possibly after waiting up to
  ``batch_window_s`` for concurrent requests to coalesce;
- **served / failed** — results are split back per request; requests
  whose deadline passed while queued fail with
  :class:`~repro.core.exceptions.DeadlineExceeded` and never reach the
  model.

Shutdown is graceful by default: :meth:`ServingEngine.close` stops
intake, drains what is queued, then joins the batcher thread.

Instrumentation (:mod:`repro.obs`): ``serve:enqueue`` / ``serve:batch``
/ ``serve:predict`` spans and ``serve.requests`` / ``serve.batches`` /
``serve.batched_docs`` / ``serve.shed`` / ``serve.deadline_miss``
counters plus a ``serve.queue_depth`` high-water gauge;
:meth:`ServingEngine.stats` mirrors the counters tracer-free
(``queue_depth_max`` is the gauge's peak).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro import obs
from repro.core.exceptions import DeadlineExceeded, Overloaded, ServingError


@dataclass(frozen=True)
class ServeConfig:
    """Serving-engine knobs.

    Parameters
    ----------
    max_batch_docs:
        Document budget per coalesced ``predict`` call.
    max_queue:
        Pending-request bound; submits beyond it shed with ``Overloaded``.
    batch_window_s:
        How long the batcher lingers for more requests after the first.
    default_deadline_s:
        Deadline applied to requests that don't set one (None = none).
    warmup:
        Run one throwaway predict before accepting traffic.
    """

    max_batch_docs: int = 64
    max_queue: int = 128
    batch_window_s: float = 0.002
    default_deadline_s: "float | None" = None
    warmup: bool = True


class Request:
    """One in-flight classify request (a minimal future)."""

    __slots__ = ("docs", "deadline", "result", "error", "_done")

    def __init__(self, docs: list, deadline: "float | None"):
        self.docs = docs
        self.deadline = deadline
        self.result: "list | None" = None
        self.error: "Exception | None" = None
        self._done = threading.Event()

    def resolve(self, result: list) -> None:
        self.result = result
        self._done.set()

    def fail(self, error: Exception) -> None:
        self.error = error
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: "float | None" = None) -> list:
        """Block for the result; re-raises the failure if the request died."""
        if not self._done.wait(timeout):
            raise TimeoutError("request still pending after "
                               f"{timeout}s (engine overloaded or closed?)")
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class ServingEngine:
    """Thread-safe micro-batching front end over a loaded model.

    ``model`` is anything with ``predict(docs) -> list`` aligned with the
    input (a :class:`~repro.serve.artifacts.ServableModel`); documents
    are strings or token lists.
    """

    def __init__(self, model, config: "ServeConfig | None" = None):
        self.model = model
        self.config = config or ServeConfig()
        self._pending: "deque[Request]" = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._abort = False
        self._stats = {"requests": 0, "served": 0, "batches": 0,
                       "batched_docs": 0, "shed": 0, "deadline_miss": 0,
                       "errors": 0, "queue_depth_max": 0}
        if self.config.warmup and hasattr(model, "warmup"):
            model.warmup()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-serve-batcher",
                                        daemon=True)
        self._thread.start()

    # -- intake --------------------------------------------------------------
    def submit(self, docs, deadline_s: "float | None" = None) -> Request:
        """Enqueue ``docs`` (list of strings / token lists); non-blocking.

        Raises :class:`Overloaded` when the queue is at ``max_queue`` —
        callers are expected to back off and retry.
        """
        docs = list(docs)
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        deadline = (time.monotonic() + deadline_s
                    if deadline_s is not None else None)
        request = Request(docs, deadline)
        with obs.span("serve:enqueue", docs=len(docs)):
            with self._not_empty:
                if self._closed:
                    raise ServingError("serving engine is closed")
                if len(self._pending) >= self.config.max_queue:
                    self._stats["shed"] += 1
                    obs.count("serve.shed")
                    raise Overloaded(
                        f"serving queue full ({self.config.max_queue} "
                        "pending requests); retry later"
                    )
                self._pending.append(request)
                self._stats["requests"] += 1
                depth = len(self._pending)
                if depth > self._stats["queue_depth_max"]:
                    self._stats["queue_depth_max"] = depth
                self._not_empty.notify()
        obs.count("serve.requests")
        obs.gauge("serve.queue_depth", depth)
        return request

    def classify(self, docs, deadline_s: "float | None" = None,
                 timeout: "float | None" = None) -> list:
        """Submit and block for the labels (convenience wrapper)."""
        return self.submit(docs, deadline_s=deadline_s).wait(timeout)

    # -- batching loop -------------------------------------------------------
    def _take_batch(self) -> "list[Request] | None":
        """Pop a coalesced batch; None when closed and drained."""
        with self._not_empty:
            while not self._pending:
                if self._closed:
                    return None
                self._not_empty.wait(0.05)
            batch = [self._pending.popleft()]
        n_docs = len(batch[0].docs)
        window_end = time.monotonic() + self.config.batch_window_s
        while n_docs < self.config.max_batch_docs:
            with self._not_empty:
                if self._pending:
                    nxt = self._pending[0]
                    if n_docs + len(nxt.docs) > self.config.max_batch_docs:
                        break
                    batch.append(self._pending.popleft())
                    n_docs += len(nxt.docs)
                    continue
                if self._closed:
                    break
                remaining = window_end - time.monotonic()
                if remaining <= 0:
                    break
                self._not_empty.wait(remaining)
        return batch

    def _loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            if self._abort:
                for request in batch:
                    request.fail(ServingError("serving engine shut down"))
                continue
            self._process(batch)

    def _process(self, batch: "list[Request]") -> None:
        now = time.monotonic()
        live = []
        for request in batch:
            if request.deadline is not None and now > request.deadline:
                self._stats["deadline_miss"] += 1
                obs.count("serve.deadline_miss")
                request.fail(DeadlineExceeded(
                    f"deadline passed {now - request.deadline:.3f}s before "
                    "the request was batched"
                ))
            else:
                live.append(request)
        if not live:
            return
        all_docs = [doc for request in live for doc in request.docs]
        with obs.span("serve:batch", requests=len(live), docs=len(all_docs)):
            try:
                with obs.span("serve:predict"):
                    results = self.model.predict(all_docs)
            except Exception as exc:  # fail the whole batch, keep serving
                self._stats["errors"] += len(live)
                obs.count("serve.errors", len(live))
                for request in live:
                    request.fail(exc)
                return
        self._stats["batches"] += 1
        self._stats["batched_docs"] += len(all_docs)
        self._stats["served"] += len(live)
        obs.count("serve.batches")
        obs.count("serve.batched_docs", len(all_docs))
        offset = 0
        for request in live:
            request.resolve(list(results[offset:offset + len(request.docs)]))
            offset += len(request.docs)

    # -- lifecycle -----------------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot (requests/served/batches/shed/...)."""
        with self._lock:
            return dict(self._stats)

    def close(self, drain: bool = True, timeout: "float | None" = 30.0) -> None:
        """Stop intake; drain queued requests (default) or abort them."""
        with self._not_empty:
            if self._closed:
                return
            self._closed = True
            self._abort = not drain
            self._not_empty.notify_all()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ServingError(f"batcher failed to drain within {timeout}s")

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close(drain=exc_type is None)
        return False
