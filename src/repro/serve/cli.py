"""Serving CLI: ``python -m repro serve <verb>``.

Verbs::

    export    train a registered method on a catalog profile and publish it
    list      one row per published model (versions, method, labels)
    inspect   dump a model version's manifest as JSON
    predict   classify documents through the micro-batching engine
    pool      serve a model over a multi-process replica pool + HTTP
    evict     delete a model version (or a whole model with --all)

Examples::

    python -m repro serve export --method westclass --profile agnews \\
        --scale 0.5 --name agnews-westclass
    python -m repro serve list
    python -m repro serve predict agnews-westclass --text "the team won"
    python -m repro serve pool agnews-westclass --replicas 4 --port 8321
    python -m repro serve inspect agnews-westclass@1
    python -m repro serve evict agnews-westclass --all

The registry root comes from ``--root`` or the ``REPRO_MODEL_DIR``
environment knob.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro import obs
from repro.core.exceptions import ReproError
from repro.core.registry import method_registry
from repro.datasets import available_profiles, load_profile
from repro.evaluation.reporting import format_table
from repro.serve.engine import ServeConfig, ServingEngine
from repro.serve.http import PoolServer
from repro.serve.pool import PoolConfig, ReplicaPool
from repro.serve.registry import ModelRegistry, parse_ref


def _method_index() -> dict:
    """Registered methods keyed by normalized CLI name (``x-class`` etc.)."""
    index = {}
    for info in method_registry().values():
        if info.cls is not None:
            index[info.name.lower().replace("-", "")] = info
    return index


def _supervision(bundle, info, kind: "str | None", seed: int):
    """Build the requested (or first supported) supervision format."""
    builders = {
        "LabelNames": ("labels", bundle.label_names),
        "Keywords": ("keywords", bundle.keywords),
        "LabeledDocuments": ("docs",
                             lambda: bundle.labeled_documents(5, seed=seed)),
    }
    supported = {builders[fmt][0]: builders[fmt][1]
                 for fmt in info.supervision if fmt in builders}
    if kind is None:
        kind = next(iter(supported))
    if kind not in supported:
        raise ReproError(
            f"{info.name} does not support supervision {kind!r} "
            f"(supported: {', '.join(supported)})"
        )
    return kind, supported[kind]()


def _cmd_export(args) -> int:
    index = _method_index()
    key = args.method.lower().replace("-", "")
    if key not in index:
        print(f"unknown method {args.method!r}; "
              f"available: {', '.join(sorted(index))}", file=sys.stderr)
        return 2
    info = index[key]
    bundle = load_profile(args.profile, seed=args.seed, scale=args.scale)
    kind, supervision = _supervision(bundle, info, args.supervision, args.seed)
    name = args.name or f"{args.profile}-{key}"
    print(f"training {info.name} on {args.profile} "
          f"(seed={args.seed}, scale={args.scale}, supervision={kind})...")
    start = time.time()
    model = info.cls(seed=args.seed)
    model.fit(bundle.train_corpus, supervision)
    trained = time.time() - start
    registry = ModelRegistry(args.root)
    probe = None
    if args.quantize:
        # Gate probe: held-out test documents the method never saw in fit.
        probe = bundle.test_corpus[: args.probe_docs]
        print(f"quantizing to {args.quantize} "
              f"(gate: {args.max_accuracy_delta} macro-F1 points "
              f"on {len(probe)} probe docs)...")
    version = registry.publish(name, model, provenance={
        "profile": args.profile,
        "seed": args.seed,
        "scale": args.scale,
        "supervision": kind,
        "method": info.name,
        "train_docs": len(bundle.train_corpus),
        "train_seconds": round(trained, 2),
    }, quantize=args.quantize, probe=probe,
        max_accuracy_delta=args.max_accuracy_delta)
    suffix = f" [{args.quantize}]" if args.quantize else ""
    print(f"published {name}@v{version:04d}{suffix} "
          f"({registry.version_dir(name, version)}) [{trained:.1f}s train]")
    return 0


def _cmd_list(args) -> int:
    registry = ModelRegistry(args.root)
    rows = registry.describe()
    if not rows:
        print(f"no models published under {registry.root}")
        return 0
    print(format_table(rows, title=f"models in {registry.root}"))
    return 0


def _cmd_inspect(args) -> int:
    registry = ModelRegistry(args.root)
    name, version = parse_ref(args.model)
    print(json.dumps(registry.inspect(name, version), indent=2,
                     sort_keys=True))
    return 0


def _read_docs(args) -> list:
    if args.text:
        return list(args.text)
    if args.file:
        lines = Path(args.file).read_text().splitlines()
    else:
        lines = sys.stdin.read().splitlines()
    return [line for line in lines if line.strip()]


def _cmd_predict(args) -> int:
    registry = ModelRegistry(args.root)
    name, version = parse_ref(args.model)
    docs = _read_docs(args)
    if not docs:
        print("no documents to classify (use --text/--file or stdin)",
              file=sys.stderr)
        return 2
    loaded = registry.load(name, version, verify=not args.no_verify)
    config = ServeConfig(max_batch_docs=args.batch, warmup=not args.no_warmup)
    with ServingEngine(loaded, config) as engine:
        start = time.time()
        labels = engine.classify(docs, deadline_s=args.deadline)
        elapsed = time.time() - start
        stats = engine.stats()
    for doc, label in zip(docs, labels):
        shown = label if isinstance(label, str) else ",".join(label)
        print(f"{shown}\t{doc[:70]}")
    print(f"[{len(docs)} docs in {elapsed * 1000:.0f}ms, "
          f"{stats['batches']} batch(es)]", file=sys.stderr)
    return 0


def _cmd_pool(args) -> int:
    registry = ModelRegistry(args.root)
    name, version = parse_ref(args.model)
    resolved = registry.resolve(name, version)
    if args.trace is not None:
        obs.enable(f"serve:pool:{name}")
    config = PoolConfig(replicas=args.replicas, max_queue=args.max_queue,
                        max_batch_docs=args.batch,
                        default_deadline_s=args.deadline,
                        warmup=not args.no_warmup,
                        verify=not args.no_verify)
    pool = ReplicaPool(registry.version_dir(name, resolved), config=config)
    server = PoolServer(pool, host=args.host, port=args.port).start()
    try:
        host, port = server.address
        print(f"listening on http://{host}:{port} "
              f"({name}@v{resolved:04d}, {args.replicas} replica(s), "
              f"segments: {len(pool.shm_segments())})", flush=True)
        if args.port_file:
            Path(args.port_file).write_text(f"{host} {port}\n")
        try:
            if args.max_seconds is not None:
                time.sleep(args.max_seconds)
            else:
                while True:
                    time.sleep(3600)
        except KeyboardInterrupt:
            print("shutting down...", file=sys.stderr)
    finally:
        server.close()
        pool.close()
        stats = pool.stats()
        print(f"[pool] dispatched={stats['dispatched']} "
              f"completed={stats['completed']} failed={stats['failed']} "
              f"shed={stats['shed']} deaths={stats['replica_deaths']} "
              f"replica_busy_max={stats['replica_busy_max']}",
              file=sys.stderr)
        if args.trace is not None:
            tracer = obs.disable()
            path = tracer.write(Path(args.trace)
                                / f"trace_pool_{name}.jsonl")
            print(obs.trace_footer(tracer, path))
    return 0


def _cmd_evict(args) -> int:
    registry = ModelRegistry(args.root)
    name, version = parse_ref(args.model)
    if args.all:
        removed = registry.evict(name, None)
    else:
        if "@" not in args.model:
            print("refusing to evict without an explicit @version "
                  "(pass --all to delete every version)", file=sys.stderr)
            return 2
        removed = registry.evict(name, version)
    print(f"evicted {name}: versions {removed}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Export, version, and serve trained models.",
    )
    parser.add_argument("--root", type=Path, default=None,
                        help="registry root (default: REPRO_MODEL_DIR)")
    sub = parser.add_subparsers(dest="verb", required=True)

    export = sub.add_parser("export", help="train a method and publish it")
    export.add_argument("--method", required=True,
                        help="registered method (e.g. westclass, x-class)")
    export.add_argument("--profile", default="agnews",
                        help=f"dataset profile ({', '.join(available_profiles())})")
    export.add_argument("--name", default=None,
                        help="model name (default: <profile>-<method>)")
    export.add_argument("--seed", type=int, default=0)
    export.add_argument("--scale", type=float, default=1.0,
                        help="dataset size multiplier")
    export.add_argument("--supervision", default=None,
                        choices=["labels", "keywords", "docs"],
                        help="supervision format (default: method's first)")
    export.add_argument("--quantize", default=None,
                        choices=["int8", "float16"],
                        help="publish quantized predict-only weights "
                             "(gated on probe-set accuracy delta)")
    export.add_argument("--max-accuracy-delta", type=float, default=0.5,
                        help="macro-F1 points the quantized model may "
                             "lose on the probe set (default: 0.5)")
    export.add_argument("--probe-docs", type=int, default=64,
                        help="held-out documents for the quantization "
                             "gate (default: 64)")
    export.set_defaults(fn=_cmd_export)

    lst = sub.add_parser("list", help="list published models")
    lst.set_defaults(fn=_cmd_list)

    inspect = sub.add_parser("inspect", help="dump a version's manifest")
    inspect.add_argument("model", help="name or name@version")
    inspect.set_defaults(fn=_cmd_inspect)

    predict = sub.add_parser("predict", help="classify documents")
    predict.add_argument("model", help="name or name@version")
    predict.add_argument("--text", action="append", default=[],
                         help="document text (repeatable)")
    predict.add_argument("--file", default=None,
                         help="file with one document per line")
    predict.add_argument("--batch", type=int, default=64,
                         help="micro-batch document budget")
    predict.add_argument("--deadline", type=float, default=None,
                         help="per-request deadline in seconds")
    predict.add_argument("--no-verify", action="store_true",
                         help="skip artifact digest verification")
    predict.add_argument("--no-warmup", action="store_true",
                         help="skip the warm-up predict")
    predict.set_defaults(fn=_cmd_predict)

    pool = sub.add_parser("pool",
                          help="serve over a multi-process replica pool")
    pool.add_argument("model", help="name or name@version")
    pool.add_argument("--replicas", type=int, default=2,
                      help="worker processes (default: 2)")
    pool.add_argument("--host", default="127.0.0.1",
                      help="bind address (default: 127.0.0.1)")
    pool.add_argument("--port", type=int, default=8321,
                      help="bind port; 0 picks an ephemeral one "
                           "(default: 8321)")
    pool.add_argument("--max-queue", type=int, default=32,
                      help="per-replica in-flight bound before 429s")
    pool.add_argument("--batch", type=int, default=64,
                      help="per-replica micro-batch document budget")
    pool.add_argument("--deadline", type=float, default=None,
                      help="default per-request deadline in seconds")
    pool.add_argument("--max-seconds", type=float, default=None,
                      help="serve for N seconds then exit "
                           "(default: until interrupted)")
    pool.add_argument("--port-file", default=None,
                      help="write '<host> <port>' here once bound "
                           "(for scripts/tests)")
    pool.add_argument("--trace", default=None, metavar="DIR",
                      help="write a merged pool trace JSONL under DIR")
    pool.add_argument("--no-verify", action="store_true",
                      help="skip artifact digest verification")
    pool.add_argument("--no-warmup", action="store_true",
                      help="skip per-replica warm-up predicts")
    pool.set_defaults(fn=_cmd_pool)

    evict = sub.add_parser("evict", help="delete a model version")
    evict.add_argument("model", help="name@version (or name with --all)")
    evict.add_argument("--all", action="store_true",
                       help="delete every version of the model")
    evict.set_defaults(fn=_cmd_evict)
    return parser


def main(argv: "list | None" = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
