"""Regex tokenizer and sentence splitter.

The library standardizes on a lowercase word tokenizer: alphabetic tokens
(with internal apostrophes/hyphens preserved) and standalone digit runs.
This matches the preprocessing the surveyed systems apply before embedding
or PLM lookup.
"""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"[a-z]+(?:['\-][a-z]+)*|\d+")
_SENT_RE = re.compile(r"(?<=[.!?])\s+")


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens of ``text``."""
    return _TOKEN_RE.findall(text.lower())


def sentences(text: str) -> list[str]:
    """Naive sentence split on terminal punctuation."""
    parts = [s.strip() for s in _SENT_RE.split(text)]
    return [s for s in parts if s]


def ngrams(tokens: list[str], n: int) -> list[tuple[str, ...]]:
    """All contiguous n-grams of ``tokens``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]
