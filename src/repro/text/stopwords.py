"""A compact English stop-word list.

Covers the function words the synthetic corpus generator emits as
"background" glue plus the usual English closed-class words; sufficient for
TF-IDF weighting and seed-word expansion filtering.
"""

STOPWORDS = frozenset(
    """
    a about above after again against all am an and any are as at be because
    been before being below between both but by could did do does doing down
    during each few for from further had has have having he her here hers
    herself him himself his how i if in into is it its itself just me more
    most my myself no nor not now of off on once only or other our ours
    ourselves out over own same she should so some such than that the their
    theirs them themselves then there these they this those through to too
    under until up very was we were what when where which while who whom why
    will with you your yours yourself yourselves
    """.split()
)


def is_stopword(token: str) -> bool:
    """True when ``token`` is an English stop word."""
    return token in STOPWORDS


def remove_stopwords(tokens: list[str]) -> list[str]:
    """``tokens`` with stop words removed."""
    return [t for t in tokens if t not in STOPWORDS]
