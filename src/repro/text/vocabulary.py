"""Vocabulary: token <-> id mapping with frequency statistics.

Reserved special tokens (used by the PLM substrate) occupy the lowest ids:
``[PAD]``, ``[UNK]``, ``[MASK]``, ``[CLS]``, ``[SEP]``.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

import numpy as np

from repro.core.exceptions import VocabularyError

PAD, UNK, MASK, CLS, SEP = "[PAD]", "[UNK]", "[MASK]", "[CLS]", "[SEP]"
SPECIAL_TOKENS = (PAD, UNK, MASK, CLS, SEP)


class Vocabulary:
    """Bidirectional token/id mapping built from token streams."""

    def __init__(self, tokens_with_counts: "dict[str, int] | None" = None,
                 specials: tuple = SPECIAL_TOKENS):
        self.specials = tuple(specials)
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        self.counts: Counter = Counter()
        for tok in self.specials:
            self._add(tok)
        if tokens_with_counts:
            for tok, count in sorted(
                tokens_with_counts.items(), key=lambda kv: (-kv[1], kv[0])
            ):
                if tok not in self._token_to_id:
                    self._add(tok)
                self.counts[tok] = count

    # -- construction -------------------------------------------------------
    @classmethod
    def build(cls, token_lists: Iterable[list[str]], min_count: int = 1,
              max_size: "int | None" = None) -> "Vocabulary":
        """Build from an iterable of token lists.

        Tokens occurring fewer than ``min_count`` times are dropped; the
        vocabulary is capped at ``max_size`` most-frequent tokens if given.
        """
        counts: Counter = Counter()
        for tokens in token_lists:
            counts.update(tokens)
        items = [(t, c) for t, c in counts.items() if c >= min_count]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        if max_size is not None:
            items = items[:max_size]
        return cls(dict(items))

    def _add(self, token: str) -> int:
        idx = len(self._id_to_token)
        self._token_to_id[token] = idx
        self._id_to_token.append(token)
        return idx

    def add(self, token: str, count: int = 0) -> int:
        """Add ``token`` if missing; returns its id."""
        if token in self._token_to_id:
            self.counts[token] += count
            return self._token_to_id[token]
        idx = self._add(token)
        self.counts[token] = count
        return idx

    # -- lookup -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def id(self, token: str) -> int:
        """Id of ``token``; unknown tokens map to ``[UNK]``."""
        return self._token_to_id.get(token, self._token_to_id[UNK])

    def strict_id(self, token: str) -> int:
        """Id of ``token``; raises on unknown tokens."""
        if token not in self._token_to_id:
            raise VocabularyError(f"token {token!r} not in vocabulary")
        return self._token_to_id[token]

    def token(self, idx: int) -> str:
        """Token with id ``idx``."""
        if not 0 <= idx < len(self._id_to_token):
            raise VocabularyError(f"id {idx} out of range (size {len(self)})")
        return self._id_to_token[idx]

    def ids(self, tokens: "list[str] | tuple") -> np.ndarray:
        """Batch id lookup: int64 array for ``tokens`` (unknowns -> UNK).

        The batch-hot path (word2vec/doc2vec pair generation): one dict
        probe per token into a preallocated array, no list intermediate.
        """
        get = self._token_to_id.get
        unk = self._token_to_id[UNK]
        return np.fromiter((get(t, unk) for t in tokens), dtype=np.int64,
                           count=len(tokens))

    def encode(self, tokens: list[str]) -> np.ndarray:
        """Int array of ids for ``tokens`` (unknowns -> UNK)."""
        return self.ids(tokens)

    def decode(self, ids: Iterable[int]) -> list[str]:
        """Tokens for ``ids``."""
        return [self.token(int(i)) for i in ids]

    # -- properties ---------------------------------------------------------
    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK]

    @property
    def mask_id(self) -> int:
        return self._token_to_id[MASK]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[CLS]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[SEP]

    @property
    def special_ids(self) -> frozenset:
        return frozenset(self._token_to_id[t] for t in self.specials)

    def content_tokens(self) -> list[str]:
        """All non-special tokens."""
        return self._id_to_token[len(self.specials):]

    def frequency(self, token: str) -> int:
        """Corpus frequency of ``token`` (0 if unseen)."""
        return self.counts.get(token, 0)

    def unigram_distribution(self, power: float = 0.75) -> np.ndarray:
        """Smoothed unigram distribution over ids (specials get 0 mass)."""
        probs = np.zeros(len(self), dtype=float)
        for tok, count in self.counts.items():
            probs[self._token_to_id[tok]] = count**power
        total = probs.sum()
        if total == 0:
            raise VocabularyError("vocabulary has no counted tokens")
        return probs / total

    def __repr__(self) -> str:
        return f"Vocabulary(size={len(self)})"
