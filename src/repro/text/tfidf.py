"""TF-IDF vectorizer over tokenized documents (scipy sparse output)."""

from __future__ import annotations

import math

import numpy as np
from scipy import sparse

from repro.core.exceptions import NotFittedError
from repro.text.stopwords import STOPWORDS
from repro.text.vocabulary import Vocabulary


class TfidfVectorizer:
    """TF-IDF with smoothed idf and L2-normalized rows.

    tf is raw term frequency; idf is ``log((1 + n) / (1 + df)) + 1``. Rows
    are L2 normalized so cosine similarity is a dot product.
    """

    def __init__(self, min_count: int = 1, max_size: "int | None" = None,
                 drop_stopwords: bool = True, sublinear_tf: bool = False):
        self.min_count = min_count
        self.max_size = max_size
        self.drop_stopwords = drop_stopwords
        self.sublinear_tf = sublinear_tf
        self.vocabulary: "Vocabulary | None" = None
        self.idf: "np.ndarray | None" = None

    def _filter(self, tokens: list[str]) -> list[str]:
        if self.drop_stopwords:
            return [t for t in tokens if t not in STOPWORDS]
        return list(tokens)

    def fit(self, token_lists: list[list[str]]) -> "TfidfVectorizer":
        """Learn vocabulary and idf weights."""
        filtered = [self._filter(t) for t in token_lists]
        self.vocabulary = Vocabulary.build(
            filtered, min_count=self.min_count, max_size=self.max_size
        )
        n_docs = len(filtered)
        df = np.zeros(len(self.vocabulary), dtype=float)
        for tokens in filtered:
            for tok in set(tokens):
                if tok in self.vocabulary:
                    df[self.vocabulary.id(tok)] += 1
        self.idf = np.log((1.0 + n_docs) / (1.0 + df)) + 1.0
        return self

    def transform(self, token_lists: list[list[str]]) -> sparse.csr_matrix:
        """(n_docs, vocab_size) L2-normalized TF-IDF matrix."""
        if self.vocabulary is None or self.idf is None:
            raise NotFittedError("TfidfVectorizer is not fitted")
        rows, cols, vals = [], [], []
        unk = self.vocabulary.unk_id
        for i, tokens in enumerate(token_lists):
            counts: dict[int, float] = {}
            for tok in self._filter(tokens):
                j = self.vocabulary.id(tok)
                if j == unk:
                    continue
                counts[j] = counts.get(j, 0.0) + 1.0
            for j, tf in counts.items():
                if self.sublinear_tf:
                    tf = 1.0 + math.log(tf)
                rows.append(i)
                cols.append(j)
                vals.append(tf * self.idf[j])
        mat = sparse.csr_matrix(
            (vals, (rows, cols)),
            shape=(len(token_lists), len(self.vocabulary)),
            dtype=float,
        )
        norms = sparse.linalg.norm(mat, axis=1)
        norms[norms == 0] = 1.0
        inv = sparse.diags(1.0 / norms)
        return inv @ mat

    def fit_transform(self, token_lists: list[list[str]]) -> sparse.csr_matrix:
        """Fit then transform ``token_lists``."""
        return self.fit(token_lists).transform(token_lists)

    def top_terms(self, token_lists: list[list[str]], k: int = 10) -> list[list[str]]:
        """Top-``k`` TF-IDF terms per document (used for keyword induction
        from labeled documents, as in WeSTClass's DOCS supervision mode)."""
        mat = self.transform(token_lists)
        assert self.vocabulary is not None
        out = []
        for i in range(mat.shape[0]):
            row = mat.getrow(i).toarray().ravel()
            idx = np.argsort(-row)[:k]
            out.append([self.vocabulary.token(j) for j in idx if row[j] > 0])
        return out
