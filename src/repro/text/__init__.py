"""Text processing substrate: tokenization, vocabularies, TF-IDF, phrases."""

from repro.text.phrases import merge_phrases, mine_phrases, phrase_corpus
from repro.text.tfidf import TfidfVectorizer
from repro.text.tokenizer import sentences, tokenize
from repro.text.vocabulary import Vocabulary

__all__ = [
    "tokenize",
    "sentences",
    "Vocabulary",
    "TfidfVectorizer",
    "mine_phrases",
    "merge_phrases",
    "phrase_corpus",
]
