"""Frequent-phrase mining (AutoPhrase-lite).

The tutorial family's preprocessing step: detect statistically significant
multi-word expressions by pointwise mutual information over adjacent token
pairs, then merge them into single tokens. Useful when label names or seed
words are phrases ("real estate"), which TaxoClass explicitly supports.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.text.stopwords import STOPWORDS


def mine_phrases(token_lists: list, min_count: int = 5,
                 min_pmi: float = 3.0, max_phrases: int = 200) -> list:
    """Significant bigrams ranked by PMI x log-frequency.

    Returns ``[(word_a, word_b), ...]``; both words must be content words.
    """
    unigrams: Counter = Counter()
    bigrams: Counter = Counter()
    for tokens in token_lists:
        unigrams.update(tokens)
        for a, b in zip(tokens, tokens[1:]):
            if a in STOPWORDS or b in STOPWORDS:
                continue
            bigrams[(a, b)] += 1
    total = sum(unigrams.values())
    if total == 0:
        return []
    scored = []
    for (a, b), count in bigrams.items():
        if count < min_count:
            continue
        pmi = math.log(
            (count * total) / (unigrams[a] * unigrams[b] + 1e-12) + 1e-12
        )
        if pmi >= min_pmi:
            scored.append((pmi * math.log1p(count), (a, b)))
    scored.sort(reverse=True)
    return [pair for _, pair in scored[:max_phrases]]


def merge_phrases(tokens: list, phrases: set, joiner: str = "_") -> list:
    """Replace occurrences of mined bigrams with joined single tokens.

    Greedy left-to-right, non-overlapping.
    """
    out: list[str] = []
    i = 0
    while i < len(tokens):
        if i + 1 < len(tokens) and (tokens[i], tokens[i + 1]) in phrases:
            out.append(f"{tokens[i]}{joiner}{tokens[i + 1]}")
            i += 2
        else:
            out.append(tokens[i])
            i += 1
    return out


def phrase_corpus(token_lists: list, min_count: int = 5,
                  min_pmi: float = 3.0) -> tuple:
    """(merged token lists, mined phrase pairs)."""
    phrases = mine_phrases(token_lists, min_count=min_count, min_pmi=min_pmi)
    phrase_set = set(phrases)
    merged = [merge_phrases(tokens, phrase_set) for tokens in token_lists]
    return merged, phrases
