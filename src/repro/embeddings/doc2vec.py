"""Doc2Vec (PV-DBOW) in numpy — a MICoL baseline.

Distributed bag-of-words paragraph vectors: each document vector is trained
to predict (via negative sampling) the words it contains. Unseen documents
are embedded by the same objective with word tables frozen.
"""

from __future__ import annotations

import numpy as np

from repro.core.seeding import ensure_rng
from repro.text.vocabulary import Vocabulary


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


class Doc2Vec:
    """PV-DBOW paragraph vectors with negative sampling."""

    def __init__(self, dim: int = 48, negatives: int = 5, epochs: int = 5,
                 lr: float = 0.05, seed: "int | np.random.Generator" = 0):
        self.dim = dim
        self.negatives = negatives
        self.epochs = epochs
        self.lr = lr
        self.rng = ensure_rng(seed)
        self.vocabulary: "Vocabulary | None" = None
        self.word_vectors: "np.ndarray | None" = None
        self.doc_vectors: "np.ndarray | None" = None

    def fit(self, token_lists: list) -> "Doc2Vec":
        """Train document and word tables on ``token_lists``."""
        self.vocabulary = Vocabulary.build(token_lists, min_count=1)
        size = len(self.vocabulary)
        self.word_vectors = np.zeros((size, self.dim))
        self.doc_vectors = (self.rng.random((len(token_lists), self.dim)) - 0.5) / self.dim
        noise = self.vocabulary.unigram_distribution()
        self._train(token_lists, self.doc_vectors, update_words=True, noise=noise)
        return self

    def _train(self, token_lists: list, doc_table: np.ndarray,
               update_words: bool, noise: np.ndarray) -> None:
        assert self.vocabulary is not None and self.word_vectors is not None
        unk = self.vocabulary.unk_id
        for _ in range(self.epochs):
            for d, tokens in enumerate(token_lists):
                ids = self.vocabulary.ids(tokens)
                ids = ids[ids != unk]
                if ids.size == 0:
                    continue
                negs = self.rng.choice(len(noise), size=(ids.size, self.negatives), p=noise)
                v_d = doc_table[d]
                u_pos = self.word_vectors[ids]
                u_neg = self.word_vectors[negs]
                g_pos = (_sigmoid(u_pos @ v_d) - 1.0)[:, None]
                g_neg = _sigmoid(np.einsum("d,nkd->nk", v_d, u_neg))[:, :, None]
                grad_d = (g_pos * u_pos).sum(axis=0) + (g_neg * u_neg).sum(axis=(0, 1))
                doc_table[d] -= self.lr * grad_d
                if update_words:
                    np.add.at(self.word_vectors, ids, -self.lr * g_pos * v_d)
                    np.add.at(
                        self.word_vectors,
                        negs.reshape(-1),
                        -self.lr * (g_neg * v_d).reshape(-1, self.dim),
                    )

    def infer(self, token_lists: list) -> np.ndarray:
        """Embed new documents with frozen word tables."""
        if self.vocabulary is None or self.word_vectors is None:
            raise RuntimeError("Doc2Vec not fitted")
        table = (self.rng.random((len(token_lists), self.dim)) - 0.5) / self.dim
        noise = self.vocabulary.unigram_distribution()
        self._train(token_lists, table, update_words=False, noise=noise)
        return table

    def matrix(self) -> np.ndarray:
        """(n_train_docs, dim) trained document vectors."""
        if self.doc_vectors is None:
            raise RuntimeError("Doc2Vec not fitted")
        return self.doc_vectors
