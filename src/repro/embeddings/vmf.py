"""von Mises–Fisher distributions on the unit hypersphere.

WeSTClass models each class as a vMF distribution fitted to its seed-word
embeddings and samples pseudo-document keywords from it. We implement the
standard approximate MLE for the concentration parameter and Wood's (1994)
rejection sampler.
"""

from __future__ import annotations

import numpy as np

from repro.core.seeding import ensure_rng
from repro.nn.functional import l2_normalize


class VonMisesFisher:
    """vMF distribution with mean direction ``mu`` and concentration ``kappa``."""

    def __init__(self, mu: np.ndarray, kappa: float):
        mu = np.asarray(mu, dtype=float)
        norm = np.linalg.norm(mu)
        if norm == 0:
            raise ValueError("vMF mean direction must be nonzero")
        self.mu = mu / norm
        self.kappa = float(kappa)
        self.dim = mu.shape[0]

    @classmethod
    def fit(cls, points: np.ndarray) -> "VonMisesFisher":
        """Approximate MLE (Banerjee et al. 2005) from unit-normalized rows."""
        points = l2_normalize(np.asarray(points, dtype=float))
        mean = points.mean(axis=0)
        r_norm = np.linalg.norm(mean)
        dim = points.shape[1]
        if r_norm >= 1.0 - 1e-9 or len(points) == 1:
            kappa = 1e4  # degenerate: all points identical
        else:
            r_bar = min(r_norm, 1.0 - 1e-6)
            kappa = r_bar * (dim - r_bar**2) / (1.0 - r_bar**2)
        return cls(mean, max(kappa, 1e-3))

    def sample(self, count: int, seed: "int | np.random.Generator" = 0) -> np.ndarray:
        """Draw ``count`` unit vectors via Wood's rejection sampler."""
        rng = ensure_rng(seed)
        dim = self.dim
        kappa = self.kappa
        b = (-2.0 * kappa + np.sqrt(4.0 * kappa**2 + (dim - 1.0) ** 2)) / (dim - 1.0)
        x0 = (1.0 - b) / (1.0 + b)
        c = kappa * x0 + (dim - 1.0) * np.log(1.0 - x0**2)

        results = np.empty((count, dim))
        for i in range(count):
            while True:
                z = rng.beta((dim - 1.0) / 2.0, (dim - 1.0) / 2.0)
                w = (1.0 - (1.0 + b) * z) / (1.0 - (1.0 - b) * z)
                u = rng.random()
                if kappa * w + (dim - 1.0) * np.log(1.0 - x0 * w) - c >= np.log(u + 1e-300):
                    break
            # Uniform direction orthogonal to mu.
            v = rng.normal(size=dim)
            v -= v.dot(self.mu) * self.mu
            v /= np.linalg.norm(v) + 1e-12
            results[i] = w * self.mu + np.sqrt(max(0.0, 1.0 - w**2)) * v
        return results

    def log_density_direction(self, points: np.ndarray) -> np.ndarray:
        """Unnormalized log density ``kappa * mu . x`` for unit rows."""
        points = l2_normalize(np.asarray(points, dtype=float))
        return self.kappa * points @ self.mu

    def __repr__(self) -> str:
        return f"VonMisesFisher(dim={self.dim}, kappa={self.kappa:.2f})"
