"""Document embeddings from word vectors."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import l2_normalize
from repro.text.stopwords import STOPWORDS


def doc_embeddings(token_lists: list, word_vectors, normalize: bool = True,
                   drop_stopwords: bool = True) -> np.ndarray:
    """Mean of word vectors per document.

    ``word_vectors`` is anything with a ``vector(word)`` method and a
    ``__contains__`` or vocabulary; unknown words fall back to the UNK
    vector of the embedding model.
    """
    dim = word_vectors.matrix().shape[1]
    out = np.zeros((len(token_lists), dim))
    for i, tokens in enumerate(token_lists):
        if drop_stopwords:
            tokens = [t for t in tokens if t not in STOPWORDS]
        if not tokens:
            continue
        vecs = np.stack([word_vectors.vector(t) for t in tokens])
        out[i] = vecs.mean(axis=0)
    return l2_normalize(out) if normalize else out


def tfidf_weighted_doc_embeddings(token_lists: list, word_vectors,
                                  normalize: bool = True) -> np.ndarray:
    """TF-IDF weighted mean of word vectors per document."""
    from repro.text.tfidf import TfidfVectorizer

    vectorizer = TfidfVectorizer()
    mat = vectorizer.fit_transform(token_lists)
    assert vectorizer.vocabulary is not None
    vocab = vectorizer.vocabulary
    table = np.stack([word_vectors.vector(vocab.token(j)) for j in range(len(vocab))])
    out = mat @ table
    weights = np.asarray(mat.sum(axis=1)).ravel()
    weights[weights == 0] = 1.0
    out = out / weights[:, None]
    return l2_normalize(out) if normalize else np.asarray(out)
