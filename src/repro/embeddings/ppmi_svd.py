"""Count-based static embeddings: PPMI matrix + truncated SVD.

Fast and deterministic, these serve two roles: a strong static-embedding
baseline in their own right, and the initialization of the PLM's token
embedding table (giving the synthetic "pre-trained" model topical token
identity before MLM training refines it).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import svds

from repro.core.exceptions import VocabularyError
from repro.text.vocabulary import Vocabulary


def cooccurrence_matrix(token_lists: list, vocabulary: Vocabulary,
                        window: int = 5) -> sparse.csr_matrix:
    """Symmetric within-window co-occurrence counts over the vocabulary."""
    rows: list[int] = []
    cols: list[int] = []
    unk = vocabulary.unk_id
    for tokens in token_lists:
        ids = [vocabulary.id(t) for t in tokens]
        ids = [i for i in ids if i != unk]
        for center in range(len(ids)):
            lo = max(0, center - window)
            for other in range(lo, center):
                rows.append(ids[center])
                cols.append(ids[other])
                rows.append(ids[other])
                cols.append(ids[center])
    data = np.ones(len(rows), dtype=float)
    size = len(vocabulary)
    mat = sparse.csr_matrix((data, (rows, cols)), shape=(size, size))
    mat.sum_duplicates()
    return mat


def ppmi(counts: sparse.csr_matrix, shift: float = 1.0) -> sparse.csr_matrix:
    """Positive pointwise mutual information of a co-occurrence matrix."""
    total = counts.sum()
    if total == 0:
        raise VocabularyError("empty co-occurrence matrix")
    row_sums = np.asarray(counts.sum(axis=1)).ravel()
    col_sums = np.asarray(counts.sum(axis=0)).ravel()
    coo = counts.tocoo()
    with np.errstate(divide="ignore"):
        pmi = np.log(
            (coo.data * total)
            / (row_sums[coo.row] * col_sums[coo.col])
        ) - np.log(shift)
    keep = pmi > 0
    return sparse.csr_matrix(
        (pmi[keep], (coo.row[keep], coo.col[keep])), shape=counts.shape
    )


class PPMISVDEmbeddings:
    """Word vectors from truncated SVD of the PPMI matrix."""

    def __init__(self, dim: int = 48, window: int = 5, shift: float = 1.0):
        self.dim = dim
        self.window = window
        self.shift = shift
        self.vocabulary: "Vocabulary | None" = None
        self.vectors: "np.ndarray | None" = None

    def fit(self, token_lists: list, vocabulary: "Vocabulary | None" = None,
            seed: int = 0) -> "PPMISVDEmbeddings":
        """Fit embeddings on tokenized documents."""
        self.vocabulary = vocabulary or Vocabulary.build(token_lists, min_count=1)
        counts = cooccurrence_matrix(token_lists, self.vocabulary, window=self.window)
        matrix = ppmi(counts, shift=self.shift)
        k = min(self.dim, min(matrix.shape) - 1)
        rng = np.random.default_rng(seed)
        v0 = rng.normal(size=min(matrix.shape))
        u, s, _ = svds(matrix.asfptype(), k=k, v0=v0)
        order = np.argsort(-s)
        vectors = u[:, order] * np.sqrt(s[order])
        if k < self.dim:
            vectors = np.hstack([vectors, np.zeros((vectors.shape[0], self.dim - k))])
        self.vectors = vectors
        return self

    def __contains__(self, word: str) -> bool:
        return self.vocabulary is not None and word in self.vocabulary

    def vector(self, word: str) -> np.ndarray:
        """Embedding of ``word`` (UNK vector if out of vocabulary)."""
        if self.vocabulary is None or self.vectors is None:
            raise VocabularyError("embeddings not fitted")
        return self.vectors[self.vocabulary.id(word)]

    def matrix(self) -> np.ndarray:
        """(vocab_size, dim) embedding table."""
        if self.vectors is None:
            raise VocabularyError("embeddings not fitted")
        return self.vectors

    def most_similar(self, word: str, k: int = 10) -> list:
        """Top-``k`` nearest words by cosine similarity."""
        from repro.nn.functional import cosine_similarity

        assert self.vocabulary is not None and self.vectors is not None
        sims = cosine_similarity(self.vector(word)[None, :], self.vectors).ravel()
        sims[self.vocabulary.id(word)] = -np.inf
        for special_id in self.vocabulary.special_ids:
            sims[special_id] = -np.inf
        idx = np.argsort(-sims)[:k]
        return [(self.vocabulary.token(i), float(sims[i])) for i in idx]
