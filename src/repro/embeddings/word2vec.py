"""Skip-gram with negative sampling (SGNS) word2vec in numpy.

Vectorized mini-batch training: each step samples a batch of
(center, context) pairs plus ``k`` negatives per pair and applies the
standard SGNS gradient to both embedding tables.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import VocabularyError
from repro.core.seeding import ensure_rng
from repro.text.vocabulary import Vocabulary


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


class Word2Vec:
    """SGNS word embeddings.

    Parameters
    ----------
    dim:
        Embedding dimensionality.
    window:
        Max distance between center and context (actual window is sampled
        uniformly in [1, window] per center, as in the original tool).
    negatives:
        Negative samples per positive pair.
    epochs / lr:
        Training passes over the pair list and (linearly decayed) learning
        rate.
    """

    def __init__(self, dim: int = 48, window: int = 5, negatives: int = 5,
                 epochs: int = 3, lr: float = 0.05, batch_size: int = 512,
                 seed: "int | np.random.Generator" = 0):
        self.dim = dim
        self.window = window
        self.negatives = negatives
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.rng = ensure_rng(seed)
        self.vocabulary: "Vocabulary | None" = None
        self.vectors: "np.ndarray | None" = None  # input embeddings
        self.context_vectors: "np.ndarray | None" = None

    def _pairs(self, token_lists: list) -> np.ndarray:
        """All (center, context) id pairs with per-center random windows.

        Vectorized window expansion: for each document, every (center,
        offset) cell of an (n, 2W) grid is kept iff the offset is inside
        that center's sampled span and lands in-bounds. Offsets ascend
        and rows flatten in center order, reproducing the pair order (and
        RNG draw order) of the original per-token Python loop exactly.
        """
        assert self.vocabulary is not None
        unk = self.vocabulary.unk_id
        offsets = np.concatenate(
            [np.arange(-self.window, 0), np.arange(1, self.window + 1)]
        )  # ascending, 0 excluded
        chunks: list[np.ndarray] = []
        for tokens in token_lists:
            ids = self.vocabulary.ids(tokens)
            ids = ids[ids != unk]
            n = len(ids)
            if n < 2:
                continue
            spans = self.rng.integers(1, self.window + 1, size=n)
            others = np.arange(n)[:, None] + offsets[None, :]  # (n, 2W)
            keep = (
                (np.abs(offsets)[None, :] <= spans[:, None])
                & (others >= 0)
                & (others < n)
            )
            centers, cells = np.nonzero(keep)  # row-major == original order
            chunks.append(
                np.stack([ids[centers], ids[others[centers, cells]]], axis=1)
            )
        if not chunks:
            raise VocabularyError("no training pairs (corpus too small?)")
        return np.concatenate(chunks).astype(np.int64, copy=False)

    def fit(self, token_lists: list, vocabulary: "Vocabulary | None" = None) -> "Word2Vec":
        """Train on tokenized documents."""
        self.vocabulary = vocabulary or Vocabulary.build(token_lists, min_count=1)
        size = len(self.vocabulary)
        self.vectors = (self.rng.random((size, self.dim)) - 0.5) / self.dim
        self.context_vectors = np.zeros((size, self.dim))
        pairs = self._pairs(token_lists)
        noise = self.vocabulary.unigram_distribution(power=0.75)

        total_steps = max(1, self.epochs * (len(pairs) // self.batch_size + 1))
        step = 0
        for _ in range(self.epochs):
            order = self.rng.permutation(len(pairs))
            for start in range(0, len(pairs), self.batch_size):
                batch = pairs[order[start : start + self.batch_size]]
                lr = self.lr * max(0.1, 1.0 - step / total_steps)
                self._step(batch, noise, lr)
                step += 1
        return self

    def _step(self, batch: np.ndarray, noise: np.ndarray, lr: float) -> None:
        assert self.vectors is not None and self.context_vectors is not None
        centers, contexts = batch[:, 0], batch[:, 1]
        b = len(batch)
        negs = self.rng.choice(len(noise), size=(b, self.negatives), p=noise)

        v_c = self.vectors[centers]  # (B, D)
        u_pos = self.context_vectors[contexts]  # (B, D)
        u_neg = self.context_vectors[negs]  # (B, K, D)

        pos_score = _sigmoid((v_c * u_pos).sum(axis=1))  # (B,)
        neg_score = _sigmoid(np.einsum("bd,bkd->bk", v_c, u_neg))  # (B, K)

        g_pos = (pos_score - 1.0)[:, None]  # (B, 1)
        g_neg = neg_score[:, :, None]  # (B, K, 1)

        grad_v = g_pos * u_pos + (g_neg * u_neg).sum(axis=1)
        grad_u_pos = g_pos * v_c
        grad_u_neg = g_neg * v_c[:, None, :]

        np.add.at(self.vectors, centers, -lr * grad_v)
        np.add.at(self.context_vectors, contexts, -lr * grad_u_pos)
        np.add.at(
            self.context_vectors,
            negs.reshape(-1),
            -lr * grad_u_neg.reshape(-1, self.dim),
        )

    # -- lookup ----------------------------------------------------------------
    def vector(self, word: str) -> np.ndarray:
        """Embedding of ``word`` (UNK vector if unseen)."""
        if self.vocabulary is None or self.vectors is None:
            raise VocabularyError("Word2Vec not fitted")
        return self.vectors[self.vocabulary.id(word)]

    def matrix(self) -> np.ndarray:
        """(vocab_size, dim) input-embedding table."""
        if self.vectors is None:
            raise VocabularyError("Word2Vec not fitted")
        return self.vectors

    def most_similar(self, word: str, k: int = 10) -> list:
        """Top-``k`` nearest words by cosine similarity."""
        from repro.nn.functional import cosine_similarity

        assert self.vocabulary is not None and self.vectors is not None
        sims = cosine_similarity(self.vector(word)[None, :], self.vectors).ravel()
        sims[self.vocabulary.id(word)] = -np.inf
        for special_id in self.vocabulary.special_ids:
            sims[special_id] = -np.inf
        idx = np.argsort(-sims)[:k]
        return [(self.vocabulary.token(i), float(sims[i])) for i in idx]
