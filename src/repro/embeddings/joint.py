"""Joint embedding space of words, labels, and documents.

WeSTClass's first stage places words, label seeds, and documents in one
latent sphere: word vectors come from a static embedding model trained on
the local corpus; a label's vector is the normalized mean of its seed-word
vectors; a document's vector is the normalized mean of its word vectors.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.doc import doc_embeddings
from repro.embeddings.word2vec import Word2Vec
from repro.nn.functional import cosine_similarity, l2_normalize


class JointEmbeddingSpace:
    """Words, labels, and documents embedded on a shared unit sphere.

    ``backend`` selects the static word-embedding model: ``"svd"``
    (PPMI + truncated SVD; robust on the small corpora this library
    targets, the default) or ``"word2vec"`` (SGNS, the original
    WeSTClass choice). A pre-fitted model can be injected via
    ``word_model`` instead.
    """

    def __init__(self, word_model=None, dim: int = 48, epochs: int = 8,
                 backend: str = "svd", seed: int = 0):
        if word_model is not None:
            self.word_model = word_model
        elif backend == "svd":
            from repro.embeddings.ppmi_svd import PPMISVDEmbeddings

            self.word_model = PPMISVDEmbeddings(dim=dim)
        elif backend == "word2vec":
            self.word_model = Word2Vec(dim=dim, epochs=epochs, seed=seed)
        else:
            raise ValueError(f"unknown backend {backend!r}")
        self._fitted_words = word_model is not None
        self.label_vectors: dict = {}

    def fit(self, token_lists: list) -> "JointEmbeddingSpace":
        """Train the word embeddings on the local corpus."""
        if not self._fitted_words:
            self.word_model.fit(token_lists)
            self._fitted_words = True
        return self

    def word_vector(self, word: str) -> np.ndarray:
        """Unit-normalized word vector."""
        return l2_normalize(self.word_model.vector(word)[None, :])[0]

    def set_label_seeds(self, seeds: dict) -> None:
        """Define each label's vector as the mean of its seed-word vectors."""
        for label, words in seeds.items():
            vecs = np.stack([self.word_vector(w) for w in words])
            self.label_vectors[label] = l2_normalize(vecs.mean(axis=0)[None, :])[0]

    def label_vector(self, label: str) -> np.ndarray:
        """The label's seed-mean vector (set via :meth:`set_label_seeds`)."""
        return self.label_vectors[label]

    def document_vectors(self, token_lists: list) -> np.ndarray:
        """Unit-normalized mean-of-words document vectors."""
        return doc_embeddings(token_lists, self.word_model, normalize=True)

    def nearest_words_to_label(self, label: str, k: int = 20,
                               exclude: "set | None" = None) -> list:
        """Words nearest a label vector (keyword expansion from label names)."""
        vocab = self.word_model.vocabulary
        assert vocab is not None
        table = self.word_model.matrix()
        sims = cosine_similarity(self.label_vectors[label][None, :], table).ravel()
        for special_id in vocab.special_ids:
            sims[special_id] = -np.inf
        exclude = exclude or set()
        out: list[str] = []
        for i in np.argsort(-sims):
            word = vocab.token(int(i))
            if word in exclude:
                continue
            out.append(word)
            if len(out) == k:
                break
        return out
