"""Static embedding substrate: PPMI-SVD, SGNS word2vec, doc2vec, vMF."""

from repro.embeddings.doc import doc_embeddings, tfidf_weighted_doc_embeddings
from repro.embeddings.doc2vec import Doc2Vec
from repro.embeddings.joint import JointEmbeddingSpace
from repro.embeddings.ppmi_svd import PPMISVDEmbeddings, cooccurrence_matrix
from repro.embeddings.vmf import VonMisesFisher
from repro.embeddings.word2vec import Word2Vec

__all__ = [
    "PPMISVDEmbeddings",
    "cooccurrence_matrix",
    "Word2Vec",
    "Doc2Vec",
    "VonMisesFisher",
    "JointEmbeddingSpace",
    "doc_embeddings",
    "tfidf_weighted_doc_embeddings",
]
