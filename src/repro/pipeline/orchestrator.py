"""The streaming-pipeline orchestrator: stages, checkpoints, re-fits.

One :class:`Pipeline` owns a stream end to end::

    source.read → tokenize → dedupe → store ─┬→ classify → drift
                                             └→ checkpoint

The loop reads ``batch_size`` documents at the cursor, runs the typed
stages (:mod:`repro.pipeline.stages`), and — once ``bootstrap_docs``
documents are stored — fits the first model through the experiment
engine (:mod:`repro.pipeline.refit`), publishes it to the registry,
and classifies everything stored so far. From then on every batch is
classified as it lands, the drift monitor watches the predictions, and
a threshold breach triggers a re-fit + atomic registry republish +
client reload.

**Determinism / crash-resume contract.** Every piece of loop state is
a pure function of the stream config and the cursor: the source is
deterministic, dedupe outcomes replay identically, fits derive their
seeds from the re-fit ordinal, and classification requests are
submitted in fixed ``batch_size`` chunks so batch composition never
depends on timing. A checkpoint (atomic, every ``checkpoint_every``
batches and at clean exit) records the cursor plus the byte-exact
store state; resume truncates the store to the checkpoint and replays
from the cursor, so an interrupted-then-resumed run produces
*byte-identical* shards and prediction logs to an uninterrupted one.
Prediction records therefore carry the model **generation** (fit
ordinal, deterministic) rather than the registry version number (which
can differ when a crash orphans a published version); the pinned
registry version lives in the checkpoint, where resume needs it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro import obs
from repro.core import env as _env
from repro.core.exceptions import CheckpointError, PipelineError
from repro.pipeline.clients import make_client
from repro.pipeline.drift import DriftMonitor, DriftPolicy
from repro.pipeline.refit import run_refit
from repro.pipeline.source import StreamConfig, StreamSource
from repro.pipeline.stages import (
    ClassifyStage,
    DedupeStage,
    StageResult,
    StoreStage,
    TokenizeStage,
)
from repro.pipeline.store import CorpusStore


@dataclass(frozen=True)
class PipelineConfig:
    """Everything a pipeline run needs (meta.json round-trips it).

    Parameters
    ----------
    stream:
        The document source (:class:`StreamConfig`).
    name:
        Stream name; the store lives at ``<store_root>/<name>``.
    store_root / registry_root:
        Corpus-store and model-registry roots; default to the
        ``REPRO_CORPUS_DIR`` / ``REPRO_MODEL_DIR`` knobs.
    model_name:
        Registry model name (default ``<name>-<method>``).
    method / method_kwargs / supervision:
        What to (re)fit: a registered method, its constructor kwargs,
        and the weak-supervision kind (``keywords`` / ``label-names``).
    backend / replicas:
        Serving client: in-process ``engine`` or multi-process ``pool``.
    batch_size:
        Stream read size and classification chunk size.
    checkpoint_every:
        Batches between checkpoints.
    bootstrap_docs:
        Stored documents required before the first fit.
    train_docs:
        Cap on the training corpus for (re)fits (None = all stored).
    drift:
        Re-fit trigger thresholds (:class:`DriftPolicy`).
    shard_docs:
        Documents per corpus-store shard.
    seed:
        Table seed for fit-row seed derivation.
    jobs:
        Worker processes for the re-fit row (1 = in-process).
    warmup:
        Warm the serving client before classifying.
    """

    stream: StreamConfig = field(default_factory=StreamConfig)
    name: str = "stream"
    store_root: "str | None" = None
    registry_root: "str | None" = None
    model_name: "str | None" = None
    method: str = "westclass"
    method_kwargs: dict = field(default_factory=dict)
    supervision: str = "keywords"
    backend: str = "engine"
    replicas: int = 2
    batch_size: int = 32
    checkpoint_every: int = 4
    bootstrap_docs: int = 64
    train_docs: "int | None" = None
    drift: DriftPolicy = field(default_factory=DriftPolicy)
    shard_docs: int = 256
    seed: int = 0
    jobs: int = 1
    warmup: bool = True

    def __post_init__(self):
        if self.batch_size < 1:
            raise PipelineError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if self.checkpoint_every < 1:
            raise PipelineError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}")

    @property
    def resolved_model_name(self) -> str:
        return self.model_name or f"{self.name}-{self.method}"

    def store_dir(self) -> Path:
        root = (Path(self.store_root) if self.store_root
                else _env.corpus_dir())
        return root / self.name

    def resolved_registry_root(self) -> Path:
        return (Path(self.registry_root) if self.registry_root
                else _env.model_dir())

    def to_meta(self) -> dict:
        return {
            "name": self.name,
            "stream": self.stream.to_state(),
            "model_name": self.resolved_model_name,
            "method": self.method,
            "method_kwargs": dict(self.method_kwargs),
            "supervision": self.supervision,
            "backend": self.backend,
            "replicas": self.replicas,
            "batch_size": self.batch_size,
            "checkpoint_every": self.checkpoint_every,
            "bootstrap_docs": self.bootstrap_docs,
            "train_docs": self.train_docs,
            "drift": self.drift.to_state(),
            "shard_docs": self.shard_docs,
            "seed": self.seed,
            "jobs": self.jobs,
            "warmup": self.warmup,
            "registry_root": str(self.resolved_registry_root()),
        }

    @classmethod
    def from_meta(cls, meta: dict, store_root) -> "PipelineConfig":
        try:
            return cls(
                stream=StreamConfig.from_state(meta["stream"]),
                name=meta["name"],
                store_root=str(store_root),
                registry_root=meta["registry_root"],
                model_name=meta["model_name"],
                method=meta["method"],
                method_kwargs=dict(meta["method_kwargs"]),
                supervision=meta["supervision"],
                backend=meta["backend"],
                replicas=int(meta["replicas"]),
                batch_size=int(meta["batch_size"]),
                checkpoint_every=int(meta["checkpoint_every"]),
                bootstrap_docs=int(meta["bootstrap_docs"]),
                train_docs=meta["train_docs"],
                drift=DriftPolicy.from_state(meta["drift"]),
                shard_docs=int(meta["shard_docs"]),
                seed=int(meta["seed"]),
                jobs=int(meta["jobs"]),
                warmup=bool(meta["warmup"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PipelineError(
                f"malformed stream meta.json: {exc}"
            ) from exc


@dataclass
class PipelineReport:
    """What one :meth:`Pipeline.run` call did (CLI footer material)."""

    batches: int = 0
    ingested: int = 0
    deduped: int = 0
    classified: int = 0
    fits: int = 0
    refits: int = 0
    model_version: "int | None" = None
    cursor: int = 0
    exhausted: bool = False
    seconds: float = 0.0
    drift_levels: dict = field(default_factory=dict)
    latencies_s: list = field(default_factory=list)


class Pipeline:
    """Stream orchestrator over one corpus store + one registry model."""

    def __init__(self, config: PipelineConfig, resume: bool = False):
        self.config = config
        self.store = CorpusStore(config.store_dir(),
                                 shard_docs=config.shard_docs)
        checkpoint = self.store.read_checkpoint()
        if resume:
            if checkpoint is None:
                raise CheckpointError(
                    f"no checkpoint under {self.store.directory}; "
                    "nothing to resume"
                )
            # The checkpointed stream config is authoritative: resuming
            # with a different stream would corrupt the corpus.
            self.config = config = replace(
                config,
                stream=StreamConfig.from_state(checkpoint["stream"]))
            self.store.truncate_to(checkpoint["store"])
            self.cursor = int(checkpoint["cursor"])
            self.ingested = int(checkpoint["ingested"])
            self.deduped = int(checkpoint["deduped"])
            self.classified = int(checkpoint["classified"])
            self.fits = int(checkpoint["fits"])
            self.model_version = checkpoint["model_version"]
            drift_state = checkpoint.get("drift")
            self.monitor = (DriftMonitor.from_state(drift_state)
                            if drift_state else None)
        else:
            if checkpoint is not None:
                raise PipelineError(
                    f"stream store {self.store.directory} already has a "
                    "checkpoint; resume it (or point the pipeline at a "
                    "fresh REPRO_CORPUS_DIR)"
                )
            self.cursor = 0
            self.ingested = 0
            self.deduped = 0
            self.classified = 0
            self.fits = 0
            self.model_version = None
            self.monitor = None
        self.source = StreamSource(config.stream)
        if not resume:
            self.store.write_meta({
                **config.to_meta(),
                "labels": list(self.source.label_set.labels),
                "keywords": self.source.keywords,
            })
        self.tokenize = TokenizeStage()
        self.dedupe = DedupeStage(seen=self.store.load_hashes())
        self.store_stage = StoreStage(self.store)
        self._client = None

    @classmethod
    def resume(cls, name: str, store_root=None) -> "Pipeline":
        """Reopen stream ``name`` from its meta + checkpoint."""
        root = Path(store_root) if store_root else _env.corpus_dir()
        store = CorpusStore(root / name)
        meta = store.read_meta()
        return cls(PipelineConfig.from_meta(meta, root), resume=True)

    # -- model lifecycle -----------------------------------------------------
    @property
    def generation(self) -> "int | None":
        """Current model generation (fit ordinal), None before bootstrap."""
        return self.fits - 1 if self.fits else None

    def _fit(self, reason: str) -> None:
        """Fit generation ``self.fits``, publish, and (re)wire the client."""
        config = self.config
        ordinal = self.fits
        with obs.span("pipeline:refit", ordinal=ordinal, reason=reason):
            version = run_refit(
                store_dir=self.store.directory,
                train_docs=config.train_docs,
                method=config.method,
                method_kwargs=config.method_kwargs,
                supervision=config.supervision,
                labels=list(self.source.label_set.labels),
                keywords=self.source.keywords,
                registry_root=config.resolved_registry_root(),
                model_name=config.resolved_model_name,
                ordinal=ordinal,
                seed=config.seed,
                jobs=config.jobs,
                reason=reason,
            )
        self.fits = ordinal + 1
        self.model_version = version
        vocabulary = self._training_vocabulary()
        if self.monitor is None:
            self.monitor = DriftMonitor(config.drift, vocabulary)
        else:
            self.monitor.after_refit(vocabulary)
        if self._client is None:
            self._client = make_client(
                config.backend,
                self._registry(), config.resolved_model_name, version,
                replicas=config.replicas,
                max_batch_docs=config.batch_size,
                warmup=config.warmup)
        else:
            self._client.reload(version)

    def _registry(self):
        from repro.serve.registry import ModelRegistry
        return ModelRegistry(self.config.resolved_registry_root())

    def _training_vocabulary(self) -> set:
        vocabulary = set()
        for record in self.store.iter_records(self.config.train_docs):
            vocabulary.update(record["tokens"])
        return vocabulary

    def _attach_client(self) -> None:
        """On resume with a fitted model: pin the checkpointed version."""
        if self._client is None and self.model_version is not None:
            config = self.config
            self._client = make_client(
                config.backend,
                self._registry(), config.resolved_model_name,
                self.model_version,
                replicas=config.replicas,
                max_batch_docs=config.batch_size,
                warmup=config.warmup)

    # -- classification ------------------------------------------------------
    def _classify(self, docs: list, started: "float | None" = None,
                  report: "PipelineReport | None" = None) -> None:
        """Classify ``docs`` in fixed chunks; log + observe predictions."""
        config = self.config
        stage = ClassifyStage(self._client)
        for i in range(0, len(docs), config.batch_size):
            chunk = docs[i:i + config.batch_size]
            result = stage.process(chunk)
            scored = result.extra["predictions"]
            records = []
            for doc, pred in zip(chunk, scored):
                label, confidence = pred[0], pred[1]
                topk = pred[2] if len(pred) > 2 else None
                records.append({
                    "position": doc.metadata.get("position"),
                    "doc_id": doc.doc_id,
                    "label": label if isinstance(label, str)
                    else list(label),
                    "confidence": (round(float(confidence), 6)
                                   if confidence is not None else None),
                    "topk": topk,
                    "model_gen": self.generation,
                })
            self.store.append_predictions(records)
            self.classified += len(chunk)
            if report is not None:
                report.classified += len(chunk)
                if started is not None:
                    now = time.perf_counter()
                    report.latencies_s.extend(
                        [now - started] * len(chunk))
            self.monitor.observe(chunk, scored)
            if self.monitor.should_refit():
                self.monitor.mark_triggered()
                if report is not None:
                    report.refits += 1
                self._fit(reason="drift")

    # -- checkpointing -------------------------------------------------------
    def checkpoint(self) -> None:
        """Atomically commit the resume state."""
        self.store.write_checkpoint({
            "cursor": self.cursor,
            "ingested": self.ingested,
            "deduped": self.deduped,
            "classified": self.classified,
            "fits": self.fits,
            "model_version": self.model_version,
            "store": self.store.state(),
            "drift": self.monitor.to_state() if self.monitor else None,
            "stream": self.config.stream.to_state(),
        })

    # -- the loop ------------------------------------------------------------
    def run(self, max_batches: "int | None" = None,
            checkpoint_on_exit: bool = True,
            track_latency: bool = False) -> PipelineReport:
        """Process the stream (to exhaustion, or ``max_batches``).

        ``checkpoint_on_exit=False`` models a crash: whatever ran since
        the last periodic checkpoint is left uncommitted, and a resumed
        pipeline replays it byte-identically.
        """
        config = self.config
        report = PipelineReport(fits=self.fits,
                                model_version=self.model_version)
        start = time.perf_counter()
        self._attach_client()
        try:
            while max_batches is None or report.batches < max_batches:
                batch_start = time.perf_counter() if track_latency else None
                with obs.span("pipeline:batch", cursor=self.cursor):
                    next_cursor, docs = self.source.read(
                        self.cursor, config.batch_size)
                    if not docs:
                        report.exhausted = True
                        break
                    result = self.tokenize.process(docs)
                    result = self.dedupe.process(result.docs)
                    result = self.store_stage.process(result)
                    self.cursor = next_cursor
                    self.ingested += len(result.docs)
                    self.deduped += result.dropped
                    report.ingested += len(result.docs)
                    report.deduped += result.dropped
                    obs.count("pipeline.batches")
                    if self.model_version is None:
                        if self.store.docs >= config.bootstrap_docs:
                            self._fit(reason="bootstrap")
                            backlog = list(self.store.corpus())[
                                self.classified:]
                            self._classify(backlog, batch_start, report)
                    elif result.docs:
                        self._classify(result.docs, batch_start, report)
                report.batches += 1
                if report.batches % config.checkpoint_every == 0:
                    self.checkpoint()
            # A stream shorter than bootstrap_docs still gets its model.
            if (report.exhausted and self.model_version is None
                    and self.store.docs):
                self._fit(reason="bootstrap")
                backlog = list(self.store.corpus())[self.classified:]
                self._classify(backlog, None, report)
            if checkpoint_on_exit:
                self.checkpoint()
        finally:
            self.close()
        report.fits = self.fits
        report.refits = max(0, self.fits - 1)
        report.model_version = self.model_version
        report.cursor = self.cursor
        report.seconds = time.perf_counter() - start
        if self.monitor is not None:
            report.drift_levels = self.monitor.levels()
        return report

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    # -- status --------------------------------------------------------------
    def status(self) -> dict:
        """Current per-stage state (no serving client started)."""
        return pipeline_status(self.store)


def pipeline_status(store: CorpusStore) -> dict:
    """Status of the stream stored at ``store`` (meta + checkpoint)."""
    meta = store.read_meta()
    checkpoint = store.read_checkpoint()
    status = {
        "name": meta.get("name"),
        "model_name": meta.get("model_name"),
        "backend": meta.get("backend"),
        "store_docs": store.docs,
        "predictions": store.predictions,
        "shards": len(store.shard_files()),
        "checkpoint": None,
    }
    if checkpoint is not None:
        drift = checkpoint.get("drift")
        status["checkpoint"] = {
            "cursor": checkpoint["cursor"],
            "ingested": checkpoint["ingested"],
            "deduped": checkpoint["deduped"],
            "classified": checkpoint["classified"],
            "fits": checkpoint["fits"],
            "model_version": checkpoint["model_version"],
            "drift_triggers": (drift or {}).get("triggers", 0),
        }
    return status
