"""Typed processing stages for the streaming pipeline.

Each stage is a small object with a ``name`` and a ``process(docs) ->
StageResult`` method. Stages hold only the state they own (the dedupe
stage its seen-hash set, the store stage its corpus store); the
orchestrator (:mod:`repro.pipeline.orchestrator`) wires them into the
fixed order **tokenize → dedupe → store → classify** and owns
checkpointing, so stages never touch the checkpoint file themselves.

Error contract: any exception escaping a stage's work is wrapped into a
:class:`~repro.core.exceptions.StageFailure` naming the stage — typed
errors only, enforced by the AST lint in ``tests/test_error_lint.py``.
A :class:`~repro.core.exceptions.PipelineError` raised inside the work
(already typed, already specific) passes through unwrapped.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro import obs
from repro.core.exceptions import PipelineError, StageFailure
from repro.pipeline.store import content_hash


@dataclass
class StageResult:
    """What a stage hands to the next one.

    ``docs`` is the surviving batch (in input order); ``dropped`` counts
    documents the stage consumed (today only dedupe drops); ``extra``
    carries stage-specific side outputs (content hashes, predictions).
    """

    docs: list
    dropped: int = 0
    extra: dict = field(default_factory=dict)


def _guard(stage_name: str, work, *args):
    """Run ``work`` and re-raise anything untyped as a StageFailure."""
    try:
        return work(*args)
    except PipelineError:
        raise
    except Exception as exc:
        raise StageFailure(
            f"stage {stage_name!r} failed on its batch: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


class TokenizeStage:
    """Normalize arriving documents to token form.

    :class:`~repro.core.types.Document` tokenizes lazily from text; this
    stage forces the token materialization up front (so downstream
    hashing/storage never re-tokenizes) and rejects empty documents.
    """

    name = "tokenize"

    def process(self, docs: list) -> StageResult:
        def work():
            total = 0
            for doc in docs:
                if not doc.tokens:
                    raise StageFailure(
                        f"stage 'tokenize' got empty document {doc.doc_id!r}")
                total += len(doc.tokens)
            obs.count("pipeline.tokens", total)
            return StageResult(docs=list(docs))
        return _guard(self.name, work)


class DedupeStage:
    """Drop content-duplicate documents by token-stream hash.

    The seen-set is guarded by a lock so concurrent feeders share one
    dedupe frontier: for any set of racing batches, exactly one carrier
    of each distinct content survives. Resume seeds the set from the
    store (:meth:`~repro.pipeline.store.CorpusStore.load_hashes`).
    """

    name = "dedupe"

    def __init__(self, seen: "set | None" = None):
        self.seen = set(seen) if seen else set()
        self._lock = threading.Lock()

    def process(self, docs: list) -> StageResult:
        def work():
            unique, hashes = [], []
            dropped = 0
            for doc in docs:
                digest = content_hash(doc.tokens)
                with self._lock:
                    fresh = digest not in self.seen
                    if fresh:
                        self.seen.add(digest)
                if fresh:
                    unique.append(doc)
                    hashes.append(digest)
                else:
                    dropped += 1
            if dropped:
                obs.count("pipeline.docs_deduped", dropped)
            return StageResult(docs=unique, dropped=dropped,
                               extra={"hashes": hashes})
        return _guard(self.name, work)


class StoreStage:
    """Append the surviving batch to the corpus store."""

    name = "store"

    def __init__(self, store):
        self.store = store

    def process(self, result: StageResult) -> StageResult:
        def work():
            hashes = result.extra.get("hashes")
            if hashes is None or len(hashes) != len(result.docs):
                raise StageFailure(
                    "stage 'store' needs one content hash per document "
                    "(run the dedupe stage first)"
                )
            self.store.append(result.docs, hashes)
            obs.count("pipeline.docs_ingested", len(result.docs))
            return result
        return _guard(self.name, work)


class ClassifyStage:
    """Classify the batch through a serving client.

    ``client`` is an :class:`~repro.pipeline.clients.EngineClient` or
    :class:`~repro.pipeline.clients.PoolClient`; its ``classify`` returns
    one ``(label, confidence_or_None)`` pair per document.
    """

    name = "classify"

    def __init__(self, client):
        self.client = client

    def process(self, docs: list) -> StageResult:
        def work():
            scored = self.client.classify(docs)
            if len(scored) != len(docs):
                raise StageFailure(
                    f"stage 'classify' got {len(scored)} results for "
                    f"{len(docs)} documents"
                )
            obs.count("pipeline.docs_classified", len(docs))
            return StageResult(docs=list(docs),
                               extra={"predictions": scored})
        return _guard(self.name, work)
