"""Serving-side clients for the online-classification stage.

Two backends over the same
``classify(docs) -> [(label, confidence, topk)]`` contract:

- :class:`EngineClient` — an in-process
  :class:`~repro.serve.engine.ServingEngine` over a registry artifact,
  wrapped in :class:`ScoredServable` so every prediction carries its
  confidence (the max class probability). This is the default: the
  confidence feeds the drift monitor's decay signal.
- :class:`PoolClient` — a multi-process
  :class:`~repro.serve.pool.ReplicaPool` over the same artifact.
  Workers return labels only, so confidences and top-k scores come
  back ``None`` and the decay signal stays silent; histogram distance
  and OOV rate still work.

Both clients **pin an explicit registry version** — they never resolve
``latest`` themselves. The orchestrator records the pinned version in
every checkpoint, so a resumed run re-attaches to exactly the model the
crashed run was serving (a later orphaned publish cannot change resumed
predictions), and ``reload(version)`` is the one atomic switch point
after a re-fit publishes. Other consumers of the registry still pick up
``latest`` on their next resolve, exactly as before.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import PipelineError
from repro.serve.engine import ServeConfig, ServingEngine
from repro.serve.pool import PoolConfig, ReplicaPool
from repro.serve.registry import ModelRegistry


class ScoredServable:
    """Wrap a :class:`~repro.serve.artifacts.ServableModel` so
    ``predict`` returns ``(label, confidence, topk)`` triples.

    The serving engine treats predict results as an opaque list aligned
    with the input, so the tuples flow through batching and per-request
    splitting untouched. Confidence is the max class probability from
    ``scores``; ``topk`` holds the ``TOP_K`` highest-scoring
    ``[label, score]`` pairs (ties broken by class order, scores rounded
    so resumed runs replay byte-identical prediction logs). A model
    without usable scores degrades to ``None`` for both rather than
    failing the stream.
    """

    #: Label scores kept per prediction record.
    TOP_K = 3

    def __init__(self, servable):
        self.servable = servable

    @property
    def labels(self):
        return self.servable.labels

    def warmup(self) -> None:
        self.servable.warmup()

    def predict(self, docs) -> list:
        labels = self.servable.predict(docs)
        try:
            scores = np.asarray(self.servable.scores(docs), dtype=np.float64)
            class_labels = list(self.servable.labels)
            confidences, topks = [], []
            for row in scores:
                order = np.argsort(-row, kind="stable")[:self.TOP_K]
                confidences.append(float(row.max()))
                topks.append([[str(class_labels[j]), round(float(row[j]), 6)]
                              for j in order])
        except Exception:
            confidences = [None] * len(labels)
            topks = [None] * len(labels)
        if len(confidences) != len(labels):
            confidences = [None] * len(labels)
            topks = [None] * len(labels)
        return list(zip(labels, confidences, topks))


class EngineClient:
    """In-process micro-batching client over a pinned registry version."""

    backend = "engine"

    def __init__(self, registry: ModelRegistry, name: str, version: int, *,
                 max_batch_docs: int = 64, warmup: bool = True):
        self.registry = registry
        self.name = name
        self.version = int(version)
        self._max_batch_docs = max_batch_docs
        self._warmup = warmup
        self._engine = self._start(self.version)

    def _start(self, version: int) -> ServingEngine:
        try:
            servable = self.registry.load(self.name, version)
        except Exception as exc:
            raise PipelineError(
                f"cannot load model {self.name}@v{version:04d} from "
                f"{self.registry.root}: {exc}"
            ) from exc
        return ServingEngine(
            ScoredServable(servable),
            ServeConfig(max_batch_docs=self._max_batch_docs,
                        warmup=self._warmup))

    def classify(self, docs) -> list:
        """``[(label, confidence, topk)]`` aligned with ``docs``."""
        try:
            return self._engine.classify([doc.tokens for doc in docs])
        except Exception as exc:
            raise PipelineError(
                f"classification through {self.name}@v{self.version:04d} "
                f"failed: {exc}"
            ) from exc

    def reload(self, version: int) -> None:
        """Atomically switch to ``version`` (drains the old engine)."""
        fresh = self._start(version)
        old, self._engine, self.version = self._engine, fresh, int(version)
        old.close()

    def close(self) -> None:
        self._engine.close()


class PoolClient:
    """Multi-process replica-pool client over a pinned registry version.

    Confidences are not available across the worker boundary, so
    ``classify`` returns ``(label, None)`` pairs.
    """

    backend = "pool"

    def __init__(self, registry: ModelRegistry, name: str, version: int, *,
                 replicas: int = 2, max_batch_docs: int = 64,
                 warmup: bool = True):
        self.registry = registry
        self.name = name
        self.version = int(version)
        self._replicas = replicas
        self._max_batch_docs = max_batch_docs
        self._warmup = warmup
        self._pool = self._start(self.version)

    def _start(self, version: int) -> ReplicaPool:
        try:
            return ReplicaPool.from_registry(
                self.registry, self.name, version,
                config=PoolConfig(replicas=self._replicas,
                                  max_batch_docs=self._max_batch_docs,
                                  warmup=self._warmup))
        except Exception as exc:
            raise PipelineError(
                f"cannot start replica pool for "
                f"{self.name}@v{version:04d}: {exc}"
            ) from exc

    def classify(self, docs) -> list:
        try:
            labels = self._pool.classify([doc.tokens for doc in docs])
        except Exception as exc:
            raise PipelineError(
                f"pool classification through "
                f"{self.name}@v{self.version:04d} failed: {exc}"
            ) from exc
        return [(label, None, None) for label in labels]

    def reload(self, version: int) -> None:
        """Atomically switch to ``version`` (drains the old pool)."""
        fresh = self._start(version)
        old, self._pool, self.version = self._pool, fresh, int(version)
        old.close()

    def close(self) -> None:
        self._pool.close()


def make_client(backend: str, registry: ModelRegistry, name: str,
                version: int, *, replicas: int = 2, max_batch_docs: int = 64,
                warmup: bool = True):
    """Client factory for the orchestrator (``engine`` or ``pool``)."""
    if backend == "engine":
        return EngineClient(registry, name, version,
                            max_batch_docs=max_batch_docs, warmup=warmup)
    if backend == "pool":
        return PoolClient(registry, name, version, replicas=replicas,
                          max_batch_docs=max_batch_docs, warmup=warmup)
    raise PipelineError(
        f"unknown serving backend {backend!r} (use 'engine' or 'pool')")
