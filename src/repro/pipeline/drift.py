"""Windowed drift detection over the classified stream.

Three counters, all cheap enough to update per batch:

- **label-histogram distance** — total-variation distance between the
  predicted-label histogram of the current window and of the *reference*
  window (the first full window after the serving model was fitted);
- **OOV rate** — fraction of window tokens outside the training
  vocabulary the current model saw;
- **confidence decay** — drop of the window's mean prediction
  confidence below the reference window's mean (engine-backed clients
  report per-doc confidence; pool clients report labels only, in which
  case this signal simply stays silent).

A :class:`DriftMonitor` accumulates per-document observations,
publishes the current levels as :mod:`repro.obs` gauges
(``pipeline.drift.hist_distance`` / ``pipeline.drift.oov_rate`` /
``pipeline.drift.conf_decay`` — high-water semantics, matching the
serving gauges), and reports ``should_refit()`` when any signal crosses
its :class:`DriftPolicy` threshold. The trigger is **exactly-once per
drift event**: firing arms a cooldown of ``cooldown`` documents, and
:meth:`DriftMonitor.after_refit` swaps in the new model's vocabulary
and resets the reference window, so the detector re-baselines on the
post-refit distribution instead of re-firing on the same shift.

The full monitor state round-trips through ``to_state()`` /
``from_state()`` and rides inside the stream checkpoint, so a resumed
run continues the same windows (byte-identical trigger behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.exceptions import PipelineError

GAUGE_HIST = "pipeline.drift.hist_distance"
GAUGE_OOV = "pipeline.drift.oov_rate"
GAUGE_CONF = "pipeline.drift.conf_decay"


@dataclass(frozen=True)
class DriftPolicy:
    """Thresholds for the re-fit trigger.

    Parameters
    ----------
    window:
        Documents per comparison window.
    hist_threshold:
        Total-variation distance (0..1) between the reference and
        current label histograms that arms a re-fit; ``None`` disables.
    oov_threshold:
        Window OOV-token rate that arms a re-fit; ``None`` disables.
    conf_decay_threshold:
        Drop in mean confidence vs the reference window that arms a
        re-fit; ``None`` disables.
    cooldown:
        Documents to ignore after a trigger before the signals are
        consulted again (lets the re-fit land and re-baseline).
    """

    window: int = 64
    hist_threshold: "float | None" = 0.35
    oov_threshold: "float | None" = None
    conf_decay_threshold: "float | None" = None
    cooldown: int = 128

    def __post_init__(self):
        if self.window < 1:
            raise PipelineError(
                f"drift window must be >= 1, got {self.window}")

    def to_state(self) -> dict:
        return {
            "window": self.window,
            "hist_threshold": self.hist_threshold,
            "oov_threshold": self.oov_threshold,
            "conf_decay_threshold": self.conf_decay_threshold,
            "cooldown": self.cooldown,
        }

    @classmethod
    def from_state(cls, state: dict) -> "DriftPolicy":
        return cls(**state)


def tv_distance(hist_a: dict, hist_b: dict) -> float:
    """Total-variation distance between two label histograms (0..1)."""
    total_a = sum(hist_a.values()) or 1
    total_b = sum(hist_b.values()) or 1
    labels = set(hist_a) | set(hist_b)
    return 0.5 * sum(abs(hist_a.get(label, 0) / total_a
                         - hist_b.get(label, 0) / total_b)
                     for label in labels)


class DriftMonitor:
    """Accumulates classified documents into drift signals."""

    def __init__(self, policy: DriftPolicy, vocabulary):
        self.policy = policy
        self.vocabulary = set(vocabulary)
        # Reference window: label counts + confidence over the first
        # `window` docs after (re)fit. Current window: rolling, reset
        # every `window` docs once the reference is frozen.
        self.reference_hist: dict = {}
        self.reference_docs = 0
        self.reference_conf_sum = 0.0
        self.reference_conf_n = 0
        self.current_hist: dict = {}
        self.current_docs = 0
        self.current_conf_sum = 0.0
        self.current_conf_n = 0
        self.current_tokens = 0
        self.current_oov = 0
        self.cooldown_left = 0
        self.triggers = 0
        self._levels = {"hist_distance": 0.0, "oov_rate": 0.0,
                        "conf_decay": 0.0}
        self._armed = False

    # -- observation ---------------------------------------------------------
    def observe(self, docs: list, predictions: list) -> None:
        """Fold one classified batch into the windows.

        ``predictions`` holds one ``(label, confidence_or_None, ...)``
        tuple per document in ``docs``; anything past the first two
        slots (e.g. the top-k label scores the orchestrator logs) is
        ignored here.
        """
        if len(docs) != len(predictions):
            raise PipelineError(
                f"drift monitor got {len(predictions)} predictions for "
                f"{len(docs)} documents"
            )
        policy = self.policy
        for doc, pred in zip(docs, predictions):
            label, confidence = pred[0], pred[1]
            key = str(label)
            if self.reference_docs < policy.window:
                self.reference_hist[key] = \
                    self.reference_hist.get(key, 0) + 1
                self.reference_docs += 1
                if confidence is not None:
                    self.reference_conf_sum += float(confidence)
                    self.reference_conf_n += 1
                continue
            self.current_hist[key] = self.current_hist.get(key, 0) + 1
            self.current_docs += 1
            if confidence is not None:
                self.current_conf_sum += float(confidence)
                self.current_conf_n += 1
            self.current_tokens += len(doc.tokens)
            self.current_oov += sum(1 for token in doc.tokens
                                    if token not in self.vocabulary)
            if self.cooldown_left > 0:
                self.cooldown_left -= 1
            if self.current_docs >= policy.window:
                # Window complete: evaluate it, then roll. Evaluating
                # here (not at batch end) keeps detection independent
                # of how batches align with windows.
                self._evaluate()
                self.current_hist = {}
                self.current_docs = 0
                self.current_conf_sum = 0.0
                self.current_conf_n = 0
                self.current_tokens = 0
                self.current_oov = 0

    def _evaluate(self) -> None:
        """Score the just-completed window; arm the trigger on breach.

        ``_levels`` keeps the last complete window's scores until the
        next window completes (so status output survives window rolls);
        ``_armed`` latches until consumed by :meth:`mark_triggered` or
        cleared by :meth:`after_refit`.
        """
        levels = {"hist_distance": tv_distance(self.reference_hist,
                                               self.current_hist),
                  "oov_rate": (self.current_oov / self.current_tokens
                               if self.current_tokens else 0.0),
                  "conf_decay": 0.0}
        if self.reference_conf_n and self.current_conf_n:
            reference = self.reference_conf_sum / self.reference_conf_n
            current = self.current_conf_sum / self.current_conf_n
            levels["conf_decay"] = max(0.0, reference - current)
        self._levels = levels
        obs.gauge(GAUGE_HIST, levels["hist_distance"])
        obs.gauge(GAUGE_OOV, levels["oov_rate"])
        obs.gauge(GAUGE_CONF, levels["conf_decay"])
        policy = self.policy
        breached = (
            (policy.hist_threshold is not None
             and levels["hist_distance"] >= policy.hist_threshold)
            or (policy.oov_threshold is not None
                and levels["oov_rate"] >= policy.oov_threshold)
            or (policy.conf_decay_threshold is not None
                and levels["conf_decay"] >= policy.conf_decay_threshold)
        )
        if breached and self.cooldown_left <= 0:
            self._armed = True

    # -- trigger protocol ----------------------------------------------------
    def levels(self) -> dict:
        """Current signal levels (for status output)."""
        return dict(self._levels)

    def should_refit(self) -> bool:
        """Whether a drift signal crossed its threshold (cooldown-gated)."""
        return self._armed

    def mark_triggered(self) -> None:
        """Record that a re-fit was launched; arms the cooldown."""
        self.triggers += 1
        self.cooldown_left = self.policy.cooldown
        self._armed = False
        obs.count("pipeline.refits")

    def after_refit(self, vocabulary) -> None:
        """Re-baseline on the freshly fitted model.

        Swaps in the new training vocabulary and clears both windows so
        the next ``window`` documents become the new reference — the
        same sustained shift cannot re-fire.
        """
        self.vocabulary = set(vocabulary)
        self.reference_hist = {}
        self.reference_docs = 0
        self.reference_conf_sum = 0.0
        self.reference_conf_n = 0
        self.current_hist = {}
        self.current_docs = 0
        self.current_conf_sum = 0.0
        self.current_conf_n = 0
        self.current_tokens = 0
        self.current_oov = 0
        self._levels = {"hist_distance": 0.0, "oov_rate": 0.0,
                        "conf_decay": 0.0}
        self._armed = False

    # -- checkpoint round-trip ----------------------------------------------
    def to_state(self) -> dict:
        return {
            "policy": self.policy.to_state(),
            "vocabulary": sorted(self.vocabulary),
            "reference_hist": dict(self.reference_hist),
            "reference_docs": self.reference_docs,
            "reference_conf_sum": self.reference_conf_sum,
            "reference_conf_n": self.reference_conf_n,
            "current_hist": dict(self.current_hist),
            "current_docs": self.current_docs,
            "current_conf_sum": self.current_conf_sum,
            "current_conf_n": self.current_conf_n,
            "current_tokens": self.current_tokens,
            "current_oov": self.current_oov,
            "cooldown_left": self.cooldown_left,
            "triggers": self.triggers,
        }

    @classmethod
    def from_state(cls, state: dict) -> "DriftMonitor":
        try:
            monitor = cls(DriftPolicy.from_state(state["policy"]),
                          state["vocabulary"])
            monitor.reference_hist = dict(state["reference_hist"])
            monitor.reference_docs = int(state["reference_docs"])
            monitor.reference_conf_sum = float(state["reference_conf_sum"])
            monitor.reference_conf_n = int(state["reference_conf_n"])
            monitor.current_hist = dict(state["current_hist"])
            monitor.current_docs = int(state["current_docs"])
            monitor.current_conf_sum = float(state["current_conf_sum"])
            monitor.current_conf_n = int(state["current_conf_n"])
            monitor.current_tokens = int(state["current_tokens"])
            monitor.current_oov = int(state["current_oov"])
            monitor.cooldown_left = int(state["cooldown_left"])
            monitor.triggers = int(state["triggers"])
        except (KeyError, TypeError, ValueError) as exc:
            raise PipelineError(
                f"malformed drift-monitor state in checkpoint: {exc}"
            ) from exc
        return monitor
