"""Streaming ingestion + online classification (``repro.pipeline``).

The producer-side half of the serving story: documents arrive as a
deterministic, cursor-resumable stream (:mod:`~repro.pipeline.source`),
flow through typed stages — tokenize → dedupe → append-only corpus
store (:mod:`~repro.pipeline.stages` / :mod:`~repro.pipeline.store`) —
and are classified online through the serving stack while a drift
monitor (:mod:`~repro.pipeline.drift`) decides when to retrain via the
experiment engine and republish (:mod:`~repro.pipeline.refit`). The
orchestrator (:mod:`~repro.pipeline.orchestrator`) wires it together
with atomic checkpoints that make crash-resume byte-identical.

CLI: ``python -m repro pipeline run/status/resume``.
"""

from repro.pipeline.drift import DriftMonitor, DriftPolicy
from repro.pipeline.orchestrator import (
    Pipeline,
    PipelineConfig,
    PipelineReport,
    pipeline_status,
)
from repro.pipeline.source import StreamConfig, StreamSource
from repro.pipeline.store import CorpusStore

__all__ = [
    "CorpusStore",
    "DriftMonitor",
    "DriftPolicy",
    "Pipeline",
    "PipelineConfig",
    "PipelineReport",
    "StreamConfig",
    "StreamSource",
    "pipeline_status",
]
