"""Pipeline CLI: ``python -m repro pipeline <verb>``.

Verbs::

    run       start a fresh stream: ingest, classify online, re-fit on drift
    resume    continue an interrupted stream from its checkpoint
    status    per-stage state of a stored stream (no model started)

Examples::

    python -m repro pipeline run --profile agnews --name agnews-live \\
        --n-docs 400 --duplicate-every 7 --drift-at 200 \\
        --drift-labels sports --bootstrap-docs 96
    python -m repro pipeline status --name agnews-live
    python -m repro pipeline resume --name agnews-live --max-batches 50

The corpus store lives under ``--store-root`` / ``REPRO_CORPUS_DIR``;
published models go to ``--registry-root`` / ``REPRO_MODEL_DIR``. Every
run ends with a per-stage footer (source cursor, dedupe drops, store
shards, classify counts, drift levels).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import env as _env
from repro.core.exceptions import ReproError
from repro.pipeline.drift import DriftPolicy
from repro.pipeline.orchestrator import (
    Pipeline,
    PipelineConfig,
    PipelineReport,
    pipeline_status,
)
from repro.pipeline.source import StreamConfig
from repro.pipeline.store import CorpusStore


def _stage_footer(pipe: Pipeline, report: PipelineReport) -> str:
    """The per-stage status footer printed after ``run``/``resume``."""
    drift = report.drift_levels or {}
    gen = pipe.generation
    model = (f"v{report.model_version:04d} (gen {gen})"
             if report.model_version is not None else "-")
    lines = [
        "[pipeline] stages:",
        f"  source     cursor={report.cursor} "
        f"exhausted={'yes' if report.exhausted else 'no'}",
        f"  tokenize   docs={report.ingested + report.deduped}",
        f"  dedupe     kept={report.ingested} dropped={report.deduped}",
        f"  store      docs={pipe.store.docs} "
        f"shards={len(pipe.store.shard_files())}",
        f"  classify   docs={report.classified} model={model} "
        f"backend={pipe.config.backend}",
        f"  drift      hist={drift.get('hist_distance', 0.0):.3f} "
        f"oov={drift.get('oov_rate', 0.0):.3f} "
        f"conf={drift.get('conf_decay', 0.0):.3f} refits={report.refits}",
    ]
    return "\n".join(lines)


def _run_and_report(pipe: Pipeline, args) -> int:
    report = pipe.run(max_batches=args.max_batches)
    print(f"[pipeline] {report.batches} batches in {report.seconds:.1f}s "
          f"({report.ingested} stored, {report.classified} classified, "
          f"{report.fits} fits)")
    print(_stage_footer(pipe, report))
    return 0


def _cmd_run(args) -> int:
    stream = StreamConfig(
        profile=args.profile,
        seed=args.seed,
        scale=args.scale,
        n_docs=args.n_docs,
        duplicate_every=args.duplicate_every,
        drift_at=args.drift_at,
        drift_labels=tuple(args.drift_labels or ()),
        drift_novel_rate=args.drift_novel_rate,
    )
    config = PipelineConfig(
        stream=stream,
        name=args.name,
        store_root=args.store_root,
        registry_root=args.registry_root,
        method=args.method,
        backend=args.backend,
        replicas=args.replicas,
        batch_size=args.batch_size,
        checkpoint_every=args.checkpoint_every,
        bootstrap_docs=args.bootstrap_docs,
        drift=DriftPolicy(
            window=args.drift_window,
            hist_threshold=args.hist_threshold,
            oov_threshold=args.oov_threshold,
            conf_decay_threshold=args.conf_decay_threshold),
        seed=args.seed,
    )
    return _run_and_report(Pipeline(config), args)


def _cmd_resume(args) -> int:
    return _run_and_report(Pipeline.resume(args.name, args.store_root), args)


def _cmd_status(args) -> int:
    root = Path(args.store_root) if args.store_root else _env.corpus_dir()
    store = CorpusStore(root / args.name)
    status = pipeline_status(store)
    print(f"[pipeline] {status['name']} "
          f"(model {status['model_name']}, backend {status['backend']})")
    print(f"  store      docs={status['store_docs']} "
          f"shards={status['shards']} "
          f"predictions={status['predictions']}")
    checkpoint = status["checkpoint"]
    if checkpoint is None:
        print("  checkpoint none (stream never checkpointed)")
    else:
        model = (f"v{checkpoint['model_version']:04d}"
                 if checkpoint["model_version"] is not None else "-")
        print(f"  checkpoint cursor={checkpoint['cursor']} "
              f"ingested={checkpoint['ingested']} "
              f"deduped={checkpoint['deduped']} "
              f"classified={checkpoint['classified']}")
        print(f"  model      {model} fits={checkpoint['fits']} "
              f"drift_triggers={checkpoint['drift_triggers']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro pipeline",
        description="streaming ingestion + online classification")
    sub = parser.add_subparsers(dest="verb", required=True)

    def common(p):
        p.add_argument("--name", default="stream",
                       help="stream name (store subdirectory)")
        p.add_argument("--store-root", default=None,
                       help="corpus-store root (default REPRO_CORPUS_DIR)")
        p.add_argument("--max-batches", type=int, default=None,
                       help="stop after N batches (default: exhaustion)")

    run = sub.add_parser("run", help="start a fresh stream")
    common(run)
    run.add_argument("--profile", default="agnews")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument("--n-docs", type=int, default=None)
    run.add_argument("--duplicate-every", type=int, default=0)
    run.add_argument("--drift-at", type=int, default=None)
    run.add_argument("--drift-labels", nargs="*", default=None)
    run.add_argument("--drift-novel-rate", type=float, default=0.0)
    run.add_argument("--drift-window", type=int, default=64)
    run.add_argument("--hist-threshold", type=float, default=0.35,
                     help="label-histogram TV distance that re-fits")
    run.add_argument("--oov-threshold", type=float, default=None,
                     help="window OOV rate that re-fits (default: off)")
    run.add_argument("--conf-decay-threshold", type=float, default=None,
                     help="mean-confidence drop that re-fits (default: off)")
    run.add_argument("--method", default="westclass")
    run.add_argument("--backend", choices=("engine", "pool"),
                     default="engine")
    run.add_argument("--replicas", type=int, default=2)
    run.add_argument("--batch-size", type=int, default=32)
    run.add_argument("--checkpoint-every", type=int, default=4)
    run.add_argument("--bootstrap-docs", type=int, default=64)
    run.add_argument("--registry-root", default=None,
                     help="model-registry root (default REPRO_MODEL_DIR)")
    run.set_defaults(func=_cmd_run)

    resume = sub.add_parser("resume",
                            help="continue a stream from its checkpoint")
    common(resume)
    resume.set_defaults(func=_cmd_resume)

    status = sub.add_parser("status", help="show stored-stream state")
    status.add_argument("--name", default="stream")
    status.add_argument("--store-root", default=None)
    status.set_defaults(func=_cmd_status)
    return parser


def main(argv: "list | None" = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
