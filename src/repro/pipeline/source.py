"""Generator-backed document stream with resumable cursor positions.

A :class:`StreamSource` turns a synthetic dataset profile into an
append-only *stream*: document ``position`` 0, 1, 2, ... each minting a
fresh :class:`~repro.core.types.Document` whose content is a pure
function of the stream config and the position. That purity is the
whole design: a cursor (an integer position) is a complete resume
token, and re-reading any range after a crash yields byte-identical
documents.

The stream models the two phenomena the online pipeline has to survive:

- **duplicates** — every ``duplicate_every``-th position re-emits the
  *content* of an earlier position under a fresh ``doc_id`` (crawler
  re-fetches, mirrored feeds). The dedupe stage is expected to drop
  them by content hash.
- **drift** — from position ``drift_at`` onward the label mixture
  tilts toward ``drift_labels`` (weighted sampling without
  replacement), and a slice of post-drift documents picks up tokens
  from a novel lexicon the training vocabulary has never seen
  (``drift_novel_rate``). Together these move all three drift
  counters: label-histogram distance, OOV rate, and confidence decay.

The emission schedule (which pool document appears at which position)
is precomputed once in the constructor from a seeded generator, so
``read`` is a slice, not a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import PipelineError
from repro.core.types import Corpus, Document

#: Tokens injected into post-drift documents to model novel vocabulary.
NOVEL_LEXICON = tuple(f"neoterm{i}" for i in range(12))


@dataclass(frozen=True)
class StreamConfig:
    """Everything that determines the stream's content.

    Parameters
    ----------
    profile / seed / scale:
        The catalog profile backing the stream (its generated train
        corpus is the emission pool).
    n_docs:
        Stream length. Unique emissions are drawn without replacement,
        so at most ``pool + duplicates`` positions exist; ``None``
        streams the whole pool once (plus scheduled duplicates).
    duplicate_every:
        Every k-th position re-emits an earlier position's content
        under a fresh doc id (``0`` disables duplicates).
    drift_at:
        Position where the label mixture shifts (``None`` = no drift).
    drift_labels:
        Labels over-sampled after the drift point.
    drift_boost:
        Sampling-weight multiplier for ``drift_labels`` post-drift.
    drift_novel_rate:
        Fraction of post-drift documents that gain novel tokens.
    """

    profile: str = "agnews"
    seed: int = 0
    scale: float = 1.0
    n_docs: "int | None" = None
    duplicate_every: int = 0
    drift_at: "int | None" = None
    drift_labels: tuple = ()
    drift_boost: float = 8.0
    drift_novel_rate: float = 0.0

    def to_state(self) -> dict:
        """JSON-safe form recorded in the stream checkpoint."""
        return {
            "profile": self.profile,
            "seed": self.seed,
            "scale": self.scale,
            "n_docs": self.n_docs,
            "duplicate_every": self.duplicate_every,
            "drift_at": self.drift_at,
            "drift_labels": list(self.drift_labels),
            "drift_boost": self.drift_boost,
            "drift_novel_rate": self.drift_novel_rate,
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamConfig":
        state = dict(state)
        state["drift_labels"] = tuple(state.get("drift_labels") or ())
        return cls(**state)


class StreamSource:
    """Deterministic, cursor-resumable document stream over a profile."""

    def __init__(self, config: StreamConfig):
        self.config = config
        from repro.datasets import load_profile

        bundle = load_profile(config.profile, seed=config.seed,
                              scale=config.scale)
        self.label_set = bundle.label_set
        self.keywords = {label: list(words) for label, words
                         in bundle.keywords().keywords.items()}
        self._pool = list(bundle.train_corpus)
        for label in config.drift_labels:
            if label not in self.label_set:
                raise PipelineError(
                    f"drift label {label!r} is not in profile "
                    f"{config.profile!r} (labels: {list(self.label_set)})"
                )
        self._schedule = self._build_schedule()

    # -- schedule ------------------------------------------------------------
    def _build_schedule(self) -> list:
        """Emission plan: one ``("doc", pool_index)`` or
        ``("dup", earlier_position)`` entry per stream position."""
        config = self.config
        rng = np.random.default_rng(
            np.random.SeedSequence([config.seed, 0x5EED]))
        n_pool = len(self._pool)
        drift_at = config.drift_at if config.drift_at is not None else n_pool

        # Weighted order over the pool: uniform before the drift point,
        # boosted toward drift_labels after it. Drawing without
        # replacement keeps every unique emission's content unique, so
        # only scheduled duplicates collide in the dedupe stage.
        pre = rng.permutation(n_pool)
        head = [int(i) for i in pre[:min(drift_at, n_pool)]]
        rest = [int(i) for i in pre[min(drift_at, n_pool):]]
        if rest and config.drift_labels:
            weights = np.asarray(
                [config.drift_boost
                 if set(self._pool[i].labels) & set(config.drift_labels)
                 else 1.0 for i in rest], dtype=np.float64)
            order = rng.choice(len(rest), size=len(rest), replace=False,
                               p=weights / weights.sum())
            rest = [rest[int(i)] for i in order]
        unique_order = head + rest

        schedule: list = []
        next_unique = 0
        while True:
            position = len(schedule)
            if config.n_docs is not None and position >= config.n_docs:
                break
            is_dup = (config.duplicate_every
                      and position
                      and position % config.duplicate_every == 0)
            if is_dup:
                schedule.append(("dup", position // 2))
            elif next_unique < len(unique_order):
                schedule.append(("doc", unique_order[next_unique]))
                next_unique += 1
            elif config.n_docs is None:
                break
            else:
                raise PipelineError(
                    f"stream over profile {config.profile!r} asked for "
                    f"{config.n_docs} docs but the pool holds only "
                    f"{n_pool} unique documents "
                    f"(+{position - next_unique} scheduled duplicates)"
                )
        return schedule

    # -- reading -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._schedule)

    def _mint(self, position: int) -> Document:
        kind, ref = self._schedule[position]
        if kind == "dup":
            original = self._mint(ref)
            return Document(doc_id=f"s{position:07d}",
                            tokens=list(original.tokens),
                            labels=original.labels,
                            metadata={"position": position,
                                      "duplicate_of": original.doc_id})
        source = self._pool[ref]
        tokens = list(source.tokens)
        config = self.config
        if (config.drift_at is not None and position >= config.drift_at
                and config.drift_novel_rate > 0):
            # Deterministic pseudo-draw from the position alone, so a
            # duplicate of a post-drift doc copies its novel tokens too.
            draw = (position * 2654435761 % 997) / 997.0
            if draw < config.drift_novel_rate:
                tokens = tokens + [NOVEL_LEXICON[(position + i)
                                                 % len(NOVEL_LEXICON)]
                                   for i in range(3)]
        return Document(doc_id=f"s{position:07d}", tokens=tokens,
                        labels=source.labels,
                        metadata={"position": position,
                                  "origin": source.doc_id})

    def read(self, cursor: int, max_docs: int) -> "tuple[int, list]":
        """Up to ``max_docs`` documents from ``cursor``; returns
        ``(next_cursor, docs)`` (empty docs = stream exhausted)."""
        if cursor < 0:
            raise PipelineError(f"stream cursor must be >= 0, got {cursor}")
        end = min(cursor + max_docs, len(self._schedule))
        return end, [self._mint(p) for p in range(cursor, end)]

    def corpus(self, n: "int | None" = None) -> Corpus:
        """The first ``n`` stream documents as a corpus (for tests)."""
        _, docs = self.read(0, n if n is not None else len(self))
        return Corpus(docs, name=f"stream-{self.config.profile}")
