"""Drift-triggered re-fit through the experiment engine.

When the drift monitor fires, the orchestrator calls :func:`run_refit`:
the retrain is expressed as a one-row experiment —
a :class:`~repro.experiments.engine.RowSpec` whose module-level
:func:`refit_runner` rebuilds the training corpus from the corpus
store, fits a fresh model, and publishes it as the next registry
version — executed via
:func:`~repro.experiments.engine.run_specs` (cache off: a re-fit must
actually run). Going through the engine buys the usual guarantees for
free: the row seed derives from ``(table_seed, row_name)`` and the row
name carries the re-fit ordinal, so re-fit *N* of a stream trains
identically wherever and whenever it runs — which is what makes
crash-resume byte-identical even when the crash lands between a
publish and the next checkpoint (the resumed run simply re-derives the
same model).

The registry publish happens *inside* the runner, so by the time
``run_specs`` returns, consumers resolving ``latest`` already see the
new version atomically; the orchestrator then reloads its own pinned
client.
"""

from __future__ import annotations

from repro.core.exceptions import PipelineError
from repro.core.supervision import Keywords, LabelNames
from repro.core.types import LabelSet

REFIT_TABLE = "pipeline"


def resolve_method(name: str):
    """Method class for ``name`` (case/punctuation-insensitive)."""
    from repro.core.registry import method_registry

    wanted = name.lower().replace("-", "").replace("_", "")
    for info in method_registry().values():
        if info.name.lower().replace("-", "") == wanted and info.cls:
            return info.cls
    raise PipelineError(
        f"unknown method {name!r} for pipeline re-fit"
    )


def build_supervision(kind: str, labels: list, keywords: "dict | None"):
    """Weak supervision for the re-fit (``keywords`` or ``label-names``)."""
    label_set = LabelSet(labels=tuple(labels))
    if kind == "keywords":
        if not keywords:
            raise PipelineError(
                "supervision 'keywords' needs a keyword map in the stream "
                "meta"
            )
        return Keywords(label_set=label_set,
                        keywords={label: list(words)
                                  for label, words in keywords.items()})
    if kind in ("label-names", "labelnames"):
        return LabelNames(label_set=label_set)
    raise PipelineError(
        f"unknown supervision kind {kind!r} (use 'keywords' or "
        "'label-names')"
    )


def refit_runner(row_seed: int, *, store_dir: str, train_docs: "int | None",
                 method: str, method_kwargs: dict, supervision: str,
                 labels: list, keywords: "dict | None", registry_root: str,
                 model_name: str, provenance: dict) -> dict:
    """One experiment row: rebuild corpus → fit → publish.

    Module-level and driven entirely by JSON-safe kwargs, so it runs
    identically in-process and in a spawn worker.
    """
    from repro.pipeline.store import CorpusStore
    from repro.serve.registry import ModelRegistry

    store = CorpusStore(store_dir)
    corpus = store.corpus(limit=train_docs)
    if not len(corpus):
        raise PipelineError(
            f"re-fit over empty corpus store {store_dir}"
        )
    cls = resolve_method(method)
    model = cls(seed=row_seed, **dict(method_kwargs))
    model.fit(corpus, build_supervision(supervision, labels, keywords))
    registry = ModelRegistry(registry_root)
    version = registry.publish(model_name, model, provenance=provenance)
    return {"version": version, "train_docs": len(corpus)}


def run_refit(*, store_dir, train_docs: "int | None", method: str,
              method_kwargs: dict, supervision: str, labels: list,
              keywords: "dict | None", registry_root, model_name: str,
              ordinal: int, seed: int, jobs: int = 1,
              reason: "str | None" = None) -> int:
    """Retrain + publish; returns the new registry version.

    ``ordinal`` is the re-fit count (0 = bootstrap fit), folded into the
    row name so each re-fit derives a distinct but reproducible seed.
    """
    from repro.experiments.engine import RowSpec, run_specs

    spec = RowSpec(
        table=REFIT_TABLE,
        name=f"refit-{model_name}-{ordinal:03d}",
        runner=refit_runner,
        kwargs={
            "store_dir": str(store_dir),
            "train_docs": train_docs,
            "method": method,
            "method_kwargs": dict(method_kwargs),
            "supervision": supervision,
            "labels": list(labels),
            "keywords": keywords,
            "registry_root": str(registry_root),
            "model_name": model_name,
            "provenance": {
                "pipeline": model_name,
                "refit_ordinal": ordinal,
                "reason": reason or "drift",
            },
        },
        static={"dataset": "stream", "method": method},
        dataset="stream",
    )
    rows = run_specs([spec], table_seed=seed, jobs=jobs, use_cache=False)
    row = rows[0]
    if "error" in row:
        raise PipelineError(
            f"re-fit {spec.name!r} failed: {row['error']}"
        )
    return int(row["version"])
