"""Append-only sharded corpus store + atomic stream checkpoints.

One directory per stream under ``REPRO_CORPUS_DIR``
(:func:`repro.core.env.corpus_dir`)::

    <root>/<stream>/
        meta.json                # stream identity: labels, keywords, config
        shards/shard_00000.jsonl # append-only document shards
        predictions.jsonl        # append-only classification log
        checkpoint.json          # atomic resume state (schema below)

Documents append as one sorted-key JSON line each (position, doc id,
content hash, tokens, gold labels), rotating to a new shard every
``shard_docs`` documents. Appends are the *only* mutation during a run;
nothing is ever rewritten in place, which is what makes the byte-level
resume contract cheap to state: the checkpoint records the exact byte
length of every shard (and of the predictions log) at commit time, and
:meth:`CorpusStore.truncate_to` drops any un-checkpointed tail after a
crash. Because stream content is deterministic, re-processing from the
checkpoint cursor regenerates the truncated bytes exactly — an
interrupted-and-resumed run ends byte-identical to an uninterrupted
one.

Checkpoint schema (``checkpoint.json``, written atomically via
tmp-then-``os.replace``)::

    {"schema": 1,
     "cursor": <next stream position>,
     "ingested": <docs appended>, "deduped": <docs dropped>,
     "classified": <predictions appended>,
     "model_version": <registry version serving at commit, or null>,
     "refits": <re-fit count>,
     "store": {"shards": {"shard_00000.jsonl": {"bytes": B, "docs": D}},
               "predictions_bytes": B, "shard_index": I, "docs_in_shard": D},
     "drift": <DriftMonitor state>, "stream": <StreamConfig state>}

Every failure is a typed :class:`~repro.core.exceptions.PipelineError`
(:class:`~repro.core.exceptions.CheckpointError` for checkpoint files),
never a bare json/OS error.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.core import env as _env
from repro.core.exceptions import CheckpointError, PipelineError
from repro.core.types import Corpus, Document

CHECKPOINT_SCHEMA = 1
META = "meta.json"
CHECKPOINT = "checkpoint.json"
PREDICTIONS = "predictions.jsonl"
SHARDS = "shards"


def content_hash(tokens: list) -> str:
    """Content identity of a document: blake2b over its token stream."""
    digest = hashlib.blake2b(digest_size=16)
    for token in tokens:
        digest.update(token.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


class CorpusStore:
    """Append-only document + prediction store for one stream.

    Parameters
    ----------
    directory:
        Store directory (conventionally ``corpus_dir() / <stream>``).
    shard_docs:
        Documents per shard before rotation.
    """

    def __init__(self, directory: "str | Path", shard_docs: int = 512):
        if shard_docs < 1:
            raise PipelineError(f"shard_docs must be >= 1, got {shard_docs}")
        self.directory = Path(directory)
        self.shard_docs = shard_docs
        self.shard_dir = self.directory / SHARDS
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        self._shard_index = 0
        self._docs_in_shard = 0
        self._docs = 0
        self._predictions = 0
        self._recount()

    @classmethod
    def for_stream(cls, name: str, root: "str | Path | None" = None,
                   shard_docs: int = 512) -> "CorpusStore":
        """The store for stream ``name`` under ``REPRO_CORPUS_DIR``."""
        base = Path(root) if root is not None else _env.corpus_dir()
        return cls(base / name, shard_docs=shard_docs)

    # -- disk state ----------------------------------------------------------
    def _shard_path(self, index: int) -> Path:
        return self.shard_dir / f"shard_{index:05d}.jsonl"

    def shard_files(self) -> list:
        """Existing shard paths in shard order."""
        return sorted(self.shard_dir.glob("shard_*.jsonl"))

    def _recount(self) -> None:
        """Rebuild in-memory counters from the files on disk."""
        self._docs = 0
        self._predictions = 0
        shards = self.shard_files()
        for path in shards:
            self._docs += sum(1 for _ in self._iter_lines(path))
        if shards:
            last = shards[-1]
            self._shard_index = int(last.stem.split("_")[1])
            self._docs_in_shard = sum(1 for _ in self._iter_lines(last))
            if self._docs_in_shard >= self.shard_docs:
                self._shard_index += 1
                self._docs_in_shard = 0
        else:
            self._shard_index = 0
            self._docs_in_shard = 0
        predictions = self.directory / PREDICTIONS
        if predictions.exists():
            self._predictions = sum(
                1 for _ in self._iter_lines(predictions))

    @staticmethod
    def _iter_lines(path: Path):
        try:
            with open(path, "r") as fh:
                for line in fh:
                    if line.strip():
                        yield line
        except OSError as exc:
            raise PipelineError(
                f"corpus store file {path} is unreadable: {exc}") from exc

    # -- counters ------------------------------------------------------------
    @property
    def docs(self) -> int:
        """Documents currently stored."""
        return self._docs

    @property
    def predictions(self) -> int:
        """Predictions currently logged."""
        return self._predictions

    # -- meta ----------------------------------------------------------------
    def write_meta(self, payload: dict) -> None:
        """Record the stream identity (labels, keywords, config) once."""
        _atomic_write(self.directory / META,
                      json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def read_meta(self) -> dict:
        path = self.directory / META
        if not path.exists():
            raise PipelineError(
                f"{path} does not exist (not a stream store?)")
        try:
            meta = json.loads(path.read_text())
        except (ValueError, OSError) as exc:
            raise PipelineError(f"{path} is unreadable: {exc}") from exc
        if not isinstance(meta, dict):
            raise PipelineError(f"{path} must hold a JSON object")
        return meta

    # -- appends -------------------------------------------------------------
    def append(self, docs: list, hashes: list) -> None:
        """Append ``docs`` (parallel to their content ``hashes``)."""
        if len(docs) != len(hashes):
            raise PipelineError(
                f"append got {len(docs)} docs but {len(hashes)} hashes")
        i = 0
        while i < len(docs):
            room = self.shard_docs - self._docs_in_shard
            chunk = docs[i:i + room]
            chunk_hashes = hashes[i:i + room]
            path = self._shard_path(self._shard_index)
            lines = []
            for doc, digest in zip(chunk, chunk_hashes):
                lines.append(json.dumps({
                    "position": doc.metadata.get("position"),
                    "doc_id": doc.doc_id,
                    "hash": digest,
                    "tokens": doc.tokens,
                    "labels": list(doc.labels),
                }, sort_keys=True))
            with open(path, "a") as fh:
                fh.write("\n".join(lines) + "\n")
            self._docs += len(chunk)
            self._docs_in_shard += len(chunk)
            if self._docs_in_shard >= self.shard_docs:
                self._shard_index += 1
                self._docs_in_shard = 0
            i += len(chunk)

    def append_predictions(self, records: list) -> None:
        """Append classification records (already JSON-safe dicts)."""
        if not records:
            return
        lines = [json.dumps(record, sort_keys=True) for record in records]
        with open(self.directory / PREDICTIONS, "a") as fh:
            fh.write("\n".join(lines) + "\n")
        self._predictions += len(records)

    # -- reads ---------------------------------------------------------------
    def iter_records(self, limit: "int | None" = None):
        """Stored document records in append order."""
        emitted = 0
        for path in self.shard_files():
            for line in self._iter_lines(path):
                if limit is not None and emitted >= limit:
                    return
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    raise PipelineError(
                        f"corrupt corpus line in {path}: {exc}") from exc
                emitted += 1
                yield record

    def corpus(self, limit: "int | None" = None,
               name: "str | None" = None) -> Corpus:
        """The stored documents (first ``limit``) as a training corpus."""
        docs = [Document(doc_id=record["doc_id"],
                         tokens=list(record["tokens"]),
                         labels=tuple(record.get("labels") or ()),
                         metadata={"position": record.get("position")})
                for record in self.iter_records(limit)]
        return Corpus(docs, name=name or self.directory.name)

    def load_hashes(self) -> set:
        """Content hashes of every stored document (dedupe resume state)."""
        return {record["hash"] for record in self.iter_records()}

    def iter_predictions(self):
        """Logged predictions in append order."""
        path = self.directory / PREDICTIONS
        if not path.exists():
            return
        for line in self._iter_lines(path):
            try:
                yield json.loads(line)
            except ValueError as exc:
                raise PipelineError(
                    f"corrupt prediction line in {path}: {exc}") from exc

    # -- byte-level resume contract ------------------------------------------
    def state(self) -> dict:
        """Byte-exact snapshot for the checkpoint (shard + log lengths)."""
        shards = {}
        for path in self.shard_files():
            shards[path.name] = {
                "bytes": path.stat().st_size,
                "docs": sum(1 for _ in self._iter_lines(path)),
            }
        predictions = self.directory / PREDICTIONS
        return {
            "shards": shards,
            "predictions_bytes": (predictions.stat().st_size
                                  if predictions.exists() else 0),
            "shard_index": self._shard_index,
            "docs_in_shard": self._docs_in_shard,
        }

    def truncate_to(self, state: dict) -> None:
        """Drop every byte appended after ``state`` was captured.

        Shards (and prediction-log bytes) beyond the recorded lengths
        are truncated; shard files the checkpoint never saw are
        deleted. After this, re-processing from the checkpoint cursor
        regenerates exactly the dropped bytes.
        """
        recorded = state.get("shards", {})
        for path in self.shard_files():
            if path.name not in recorded:
                path.unlink()
                continue
            want = int(recorded[path.name]["bytes"])
            have = path.stat().st_size
            if have < want:
                raise CheckpointError(
                    f"shard {path} holds {have} bytes but the checkpoint "
                    f"recorded {want}; the store was modified outside the "
                    "pipeline"
                )
            if have > want:
                with open(path, "r+b") as fh:
                    fh.truncate(want)
        predictions = self.directory / PREDICTIONS
        want = int(state.get("predictions_bytes", 0))
        if predictions.exists():
            have = predictions.stat().st_size
            if have < want:
                raise CheckpointError(
                    f"predictions log {predictions} holds {have} bytes but "
                    f"the checkpoint recorded {want}; the store was "
                    "modified outside the pipeline"
                )
            if have > want:
                with open(predictions, "r+b") as fh:
                    fh.truncate(want)
        elif want:
            raise CheckpointError(
                f"predictions log {predictions} is missing but the "
                f"checkpoint recorded {want} bytes"
            )
        self._shard_index = int(state.get("shard_index", 0))
        self._docs_in_shard = int(state.get("docs_in_shard", 0))
        self._recount()
        self._shard_index = int(state.get("shard_index", self._shard_index))
        self._docs_in_shard = int(state.get("docs_in_shard",
                                            self._docs_in_shard))

    # -- checkpoints ---------------------------------------------------------
    def write_checkpoint(self, payload: dict) -> None:
        """Atomically commit ``payload`` as the stream checkpoint."""
        record = {"schema": CHECKPOINT_SCHEMA, **payload}
        _atomic_write(self.directory / CHECKPOINT,
                      json.dumps(record, indent=2, sort_keys=True) + "\n")

    def read_checkpoint(self) -> "dict | None":
        """The committed checkpoint, or ``None`` for a fresh stream."""
        path = self.directory / CHECKPOINT
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (ValueError, OSError) as exc:
            raise CheckpointError(
                f"checkpoint {path} is unreadable: {exc}; delete it to "
                "restart the stream from scratch") from exc
        if not isinstance(payload, dict):
            raise CheckpointError(f"checkpoint {path} must hold a JSON object")
        schema = payload.get("schema")
        if schema != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"checkpoint {path} has schema {schema!r}; this build "
                f"reads schema {CHECKPOINT_SCHEMA}"
            )
        return payload

    def __repr__(self) -> str:
        return (f"CorpusStore(directory={str(self.directory)!r}, "
                f"docs={self._docs}, predictions={self._predictions})")
