"""Edge affinity scoring with the PLM entailment head.

Taxonomy construction reduces to asking, for every candidate parent-child
pair, "is the parent's vocabulary entailed by text about the child?". The
PLM entailment head (:class:`~repro.plm.nli.RelevanceModel`) supplies the
*support* side of that question: its document-class relevance grid picks
out, for every label, the corpus documents that are about it (softmax
weights, so every document contributes in proportion to its relevance).

Affinity itself is a lift statistic over that support. Two components,
each column-standardised and summed:

- **name lift** — how much more often the candidate parent's surface
  name occurs in the child's support than in the corpus at large;
- **lexicon lift** — the same statistic over the parent's *estimated
  lexicon*: the tokens most over-represented in the parent's own
  top-relevance documents relative to the corpus.

Lift alone is nearly symmetric — it measures *relatedness*, not which
node is the parent. A directional factor fixes that: candidate parents
are discounted unless they look more *general* than the child (their
name reaches more documents, their support is more spread out) and the
lift asymmetry points child -> parent. The final affinity is

``P(edge) = sigmoid(relatedness) * sigmoid(direction)``

so affinities read as probabilities and compose with
:data:`ROOT_PRIOR` (the stand-in score for attaching at the top
level). Everything is deterministic: stable argsorts, sorted
tie-breaks, and a cached matrix.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro import obs
from repro.core.exceptions import EdgeScoringError
from repro.core.types import Corpus, LabelSet

#: Affinity assigned to the virtual ROOT as a candidate parent. A node
#: whose best real parent scores below this (plus the repairer's margin)
#: belongs at the top level.
ROOT_PRIOR = 0.5

#: Softmax temperature for turning relevance columns into doc weights.
_SUPPORT_TEMP = 4.0

#: Sigmoid scale for mapping summed z-scores to probabilities.
_CALIBRATION = 1.5

#: Sigmoid gain on the direction factor (generality + lift asymmetry).
_DIRECTION_GAIN = 2.0


def label_universe(bundle) -> LabelSet:
    """Label set over *every* taxonomy node of ``bundle``.

    Tree bundles expose only leaves through ``bundle.label_set``; edge
    scoring needs internal nodes too (they are exactly the candidate
    parents), so the universe is rebuilt from the generator world's
    name table.
    """
    names = dict(bundle.world.names)
    return LabelSet(labels=tuple(sorted(names)), names=names,
                    descriptions=dict(bundle.label_set.descriptions))


class EdgeScorer:
    """Parent-child edge affinities over a label universe.

    Parameters
    ----------
    relevance:
        A fitted :class:`~repro.plm.nli.RelevanceModel`.
    corpus:
        Unlabeled documents providing per-node support.
    label_set:
        The label universe (ids + surface names) edges are scored over.
    evidence_docs:
        Top-relevance documents mined for each label's estimated lexicon.
    evidence_tokens:
        Size of the estimated lexicon kept per label.
    """

    def __init__(self, relevance, corpus: Corpus, label_set: LabelSet,
                 evidence_docs: int = 12, evidence_tokens: int = 24):
        if len(corpus) == 0:
            raise EdgeScoringError(
                "edge scoring needs a non-empty evidence corpus")
        self.relevance = relevance
        self.label_set = label_set
        self.labels = list(label_set.labels)
        self.evidence_docs = evidence_docs
        self.evidence_tokens = evidence_tokens
        self._name_tokens: dict[str, list] = {}
        for label in self.labels:
            tokens = list(label_set.name_tokens(label))
            if not tokens:
                raise EdgeScoringError(
                    f"label {label!r} has no surface-name tokens; the "
                    "entailment head has nothing to score it against"
                )
            self._name_tokens[label] = tokens
        self._token_lists = corpus.token_lists()
        self._lexicons: "dict[str, list] | None" = None
        self._affinity: "np.ndarray | None" = None

    @classmethod
    def from_bundle(cls, bundle, plm=None, **kwargs) -> "EdgeScorer":
        """Scorer over a bundle's train corpus and full node universe."""
        from repro.plm.provider import get_pretrained_lm, get_relevance_model

        if plm is None:
            plm = get_pretrained_lm(target_corpus=bundle.train_corpus)
        return cls(get_relevance_model(plm), bundle.train_corpus,
                   label_universe(bundle), **kwargs)

    # -- support ------------------------------------------------------------
    def _support(self) -> tuple:
        """(relevance grid, per-label soft doc weights), computed once."""
        grid = self.relevance.relevance_matrix(
            self._token_lists,
            [self._name_tokens[l] for l in self.labels])
        shifted = np.exp(_SUPPORT_TEMP * (grid - grid.max(axis=0,
                                                          keepdims=True)))
        weights = shifted / shifted.sum(axis=0, keepdims=True)
        return grid, weights

    def _estimate_lexicons(self, grid: np.ndarray) -> dict:
        """Per-label estimated lexicons (over-represented support tokens)."""
        global_counts: Counter = Counter(
            t for tokens in self._token_lists for t in tokens)
        total = sum(global_counts.values()) or 1
        lexicons: dict[str, list] = {}
        for j, label in enumerate(self.labels):
            top = np.argsort(-grid[:, j], kind="stable")[: self.evidence_docs]
            counts: Counter = Counter(
                t for i in top for t in self._token_lists[int(i)])
            mass = sum(counts.values()) or 1
            scored = sorted(
                ((count / mass - global_counts[t] / total, t)
                 for t, count in counts.items()),
                key=lambda pair: (-pair[0], pair[1]))
            mined = [t for _, t in scored[: self.evidence_tokens]]
            lexicons[label] = sorted(set(mined) | set(self._name_tokens[label]))
        return lexicons

    def evidence(self, label: str) -> list:
        """The estimated lexicon mined for ``label`` (sorted tokens)."""
        if self._lexicons is None:
            self.affinity_matrix()
        try:
            return list(self._lexicons[label])
        except KeyError:
            raise EdgeScoringError(
                f"label {label!r} is outside the scored universe "
                f"({len(self.labels)} labels)"
            ) from None

    # -- affinities ---------------------------------------------------------
    def _lift(self, token_sets: dict, weights: np.ndarray) -> np.ndarray:
        """(child, parent) lift of each parent token set in child support."""
        n_docs, n = len(self._token_lists), len(self.labels)
        freq = np.zeros((n_docs, n))
        for d, tokens in enumerate(self._token_lists):
            length = len(tokens) or 1
            counts = Counter(tokens)
            for j, label in enumerate(self.labels):
                freq[d, j] = sum(counts[t] for t in token_sets[label]) / length
        base = freq.mean(axis=0) + 1e-9
        return (freq.T @ weights).T / base

    @staticmethod
    def _standardize(matrix: np.ndarray) -> np.ndarray:
        return ((matrix - matrix.mean(axis=0))
                / (matrix.std(axis=0) + 1e-9))

    def _generality(self, weights: np.ndarray) -> np.ndarray:
        """Per-label generality: name reach + support spread (z-summed).

        A parent's surface name occurs across the documents of *all* its
        descendants, and its support weights are spread over them; a leaf
        concentrates on its own few documents.
        """
        doc_sets = [set(tokens) for tokens in self._token_lists]
        reach = np.array([
            sum(1 for tokens in doc_sets
                if not tokens.isdisjoint(self._name_tokens[label]))
            for label in self.labels], dtype=float) / (len(doc_sets) or 1)
        entropy = -(weights * np.log(weights + 1e-12)).sum(axis=0)
        spread = np.exp(entropy)

        def z(values):
            return (values - values.mean()) / (values.std() + 1e-9)
        return 1.5 * z(reach) + 0.5 * z(spread)

    @staticmethod
    def _direction(relatedness: np.ndarray,
                   generality: np.ndarray) -> np.ndarray:
        """(child, parent) direction score: positive when the column node
        looks like the row node's ancestor."""
        asymmetry = relatedness - relatedness.T
        asymmetry = asymmetry / (asymmetry.std() + 1e-9)
        return (generality[None, :] - generality[:, None]) + asymmetry

    def affinity_matrix(self) -> np.ndarray:
        """(n_labels, n_labels) grid: P(parent is an ancestor of child).

        Row = child, column = candidate parent. Computed once and cached;
        the diagonal (self-parenting) is forced to 0.
        """
        if self._affinity is None:
            with obs.span("taxogen:evidence", labels=len(self.labels),
                          docs=len(self._token_lists)):
                grid, weights = self._support()
                self._lexicons = self._estimate_lexicons(grid)
            with obs.span("taxogen:score", labels=len(self.labels)):
                names = {l: set(self._name_tokens[l]) for l in self.labels}
                lexicons = {l: set(self._lexicons[l]) for l in self.labels}
                summed = (self._standardize(self._lift(names, weights))
                          + self._standardize(self._lift(lexicons, weights)))
                related = 1.0 / (1.0 + np.exp(-summed / _CALIBRATION))
                direction = self._direction(related,
                                            self._generality(weights))
                prob = related / (1.0 + np.exp(-_DIRECTION_GAIN * direction))
                np.fill_diagonal(prob, 0.0)
                self._affinity = prob
            obs.gauge("taxogen.edges.scored", float(prob.size))
        return self._affinity

    def affinity(self, child: str, parent: str) -> float:
        """Affinity of one directed ``parent -> child`` edge."""
        index = {l: i for i, l in enumerate(self.labels)}
        for node in (child, parent):
            if node not in index:
                raise EdgeScoringError(
                    f"label {node!r} is outside the scored universe")
        return float(self.affinity_matrix()[index[child], index[parent]])
