"""Deterministic taxonomy perturbation + repair-recovery measurement.

The bench story: perturb a known-good taxonomy (re-parent some nodes,
delete some leaves, add spurious DAG edges), run the repairer, and
measure the fraction of perturbed edges whose true parent assignment is
restored. Perturbations are seeded and pure, so the same seed yields
the same damage on every host.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import RepairError
from repro.core.seeding import ensure_rng
from repro.taxonomy.dag import LabelDAG
from repro.taxonomy.tree import ROOT, LabelTree


@dataclass(frozen=True)
class Perturbation:
    """Record of the damage done (the bench's answer key).

    ``moved`` holds ``(node, true_parent, wrong_parent)`` triples,
    ``deleted`` the leaves removed outright, ``spurious`` the extra
    ``(parent, child)`` edges added (DAG mode only).
    """

    moved: tuple
    deleted: tuple
    spurious: tuple

    @property
    def n_edges(self) -> int:
        return len(self.moved) + len(self.deleted) + len(self.spurious)


def _tree_edges(tree: LabelTree) -> tuple:
    return ([(tree.parent(n), n) for n in tree.nodes
             if tree.parent(n) != ROOT],
            tree.children(ROOT))


def _dag_edges(dag: LabelDAG) -> tuple:
    edges, top = [], []
    for node in dag.nodes:
        for parent in dag.parents(node):
            (top.append(node) if parent == ROOT
             else edges.append((parent, node)))
    return edges, top


def perturb_tree(tree: LabelTree, seed=0, n_reparent: int = 3,
                 n_delete: int = 2) -> tuple:
    """``(perturbed LabelTree, Perturbation)``.

    Re-parents ``n_reparent`` non-top nodes to a random wrong parent
    (outside their own subtree) and deletes ``n_delete`` leaves.
    """
    rng = ensure_rng(seed)
    parent_of = {n: tree.parent(n) for n in tree.nodes}
    moved, deleted = [], []

    leaves = sorted(tree.leaves())
    for _ in range(min(n_delete, max(0, len(leaves) - 1))):
        victim = leaves.pop(int(rng.integers(len(leaves))))
        deleted.append((victim, parent_of.pop(victim)))

    movable = sorted(n for n, p in parent_of.items() if p != ROOT)
    for _ in range(min(n_reparent, len(movable))):
        node = movable.pop(int(rng.integers(len(movable))))
        subtree = {node} | {m for m in parent_of
                            if node in _path(parent_of, m)}
        wrong = sorted(set(parent_of) - subtree - {parent_of[node]})
        if not wrong:
            continue
        target = wrong[int(rng.integers(len(wrong)))]
        moved.append((node, parent_of[node], target))
        parent_of[node] = target

    perturbed = LabelTree(parent_of)
    return perturbed, Perturbation(moved=tuple(moved),
                                   deleted=tuple(deleted), spurious=())


def _path(parent_of: dict, node: str) -> set:
    out, current = set(), node
    while current != ROOT:
        out.add(current)
        current = parent_of[current]
    return out


def _reach(edge_set: set, node: str, forward: bool) -> set:
    """Nodes reachable from ``node`` in the working edge set.

    ``forward=True`` walks parent->child (descendants), ``False`` walks
    child->parent (ancestors). Reachability must be computed on the
    *working* graph — earlier perturbations may have opened paths the
    original taxonomy did not have.
    """
    step: dict[str, set] = {}
    for parent, child in edge_set:
        src, dst = (parent, child) if forward else (child, parent)
        step.setdefault(src, set()).add(dst)
    seen: set[str] = set()
    frontier = [node]
    while frontier:
        for nxt in step.get(frontier.pop(), ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def perturb_dag(dag: LabelDAG, seed=0, n_reparent: int = 3,
                n_delete: int = 2, n_spurious: int = 2) -> tuple:
    """``(perturbed LabelDAG, Perturbation)``.

    Re-parents single-parent nodes, deletes leaves, and adds spurious
    extra-parent edges between randomly chosen unrelated nodes.
    """
    rng = ensure_rng(seed)
    edges, top = _dag_edges(dag)
    edge_set = set(edges)
    top_set = set(top)
    moved, deleted, spurious = [], [], []

    leaves = sorted(dag.leaves())
    for _ in range(min(n_delete, max(0, len(leaves) - 1))):
        victim = leaves.pop(int(rng.integers(len(leaves))))
        for parent in dag.parents(victim):
            if parent == ROOT:
                top_set.discard(victim)
                deleted.append((victim, ROOT))
            else:
                edge_set.discard((parent, victim))
                deleted.append((victim, parent))

    removed = {node for node, _ in deleted}
    single = sorted(n for n in dag.nodes
                    if n not in removed and dag.parents(n) != [ROOT]
                    and len(dag.parents(n)) == 1)
    for _ in range(min(n_reparent, len(single))):
        node = single.pop(int(rng.integers(len(single))))
        true_parent = dag.parents(node)[0]
        forbidden = (_reach(edge_set, node, forward=True)
                     | {node, true_parent} | removed)
        wrong = sorted(set(dag.nodes) - forbidden)
        if not wrong:
            continue
        target = wrong[int(rng.integers(len(wrong)))]
        edge_set.discard((true_parent, node))
        edge_set.add((target, node))
        moved.append((node, true_parent, target))

    alive = sorted(set(dag.nodes) - removed)
    for _ in range(n_spurious):
        child = alive[int(rng.integers(len(alive)))]
        forbidden = (_reach(edge_set, child, forward=False)
                     | _reach(edge_set, child, forward=True)
                     | {child} | removed)
        pool = sorted(set(alive) - forbidden)
        pool = [p for p in pool if (p, child) not in edge_set]
        if not pool:
            continue
        parent = pool[int(rng.integers(len(pool)))]
        edge_set.add((parent, child))
        spurious.append((parent, child))

    try:
        perturbed = LabelDAG(sorted(edge_set), top_level=sorted(top_set))
    except Exception as exc:  # a degenerate draw — surface it typed
        raise RepairError(f"perturbation produced an invalid DAG: {exc}") from exc
    return perturbed, Perturbation(moved=tuple(moved),
                                   deleted=tuple(deleted),
                                   spurious=tuple(spurious))


def edge_recovery(perturbation: Perturbation, repaired) -> dict:
    """Fraction of perturbed edges the repair restored.

    A *moved* node recovers when its true parent edge is back (and the
    wrong one gone); a *deleted* node when it is re-inserted under its
    true parent; a *spurious* edge when it is pruned. Returns per-kind
    and overall fractions plus raw counts.
    """
    def has_edge(parent, child):
        if child not in repaired:
            return False
        if hasattr(repaired, "parents"):
            return parent in repaired.parents(child)
        return repaired.parent(child) == parent

    recovered = {"moved": 0, "deleted": 0, "spurious": 0}
    for node, true_parent, wrong_parent in perturbation.moved:
        if has_edge(true_parent, node) and not has_edge(wrong_parent, node):
            recovered["moved"] += 1
    for node, true_parent in perturbation.deleted:
        if has_edge(true_parent, node):
            recovered["deleted"] += 1
    for parent, child in perturbation.spurious:
        if not has_edge(parent, child):
            recovered["spurious"] += 1

    totals = {"moved": len(perturbation.moved),
              "deleted": len(perturbation.deleted),
              "spurious": len(perturbation.spurious)}
    n = sum(totals.values())
    out = {"edges_perturbed": n,
           "edges_recovered": sum(recovered.values()),
           "recovered_fraction": (sum(recovered.values()) / n) if n else 1.0}
    for kind in totals:
        out[f"{kind}_total"] = totals[kind]
        out[f"{kind}_recovered"] = recovered[kind]
    return out
