"""Taxonomy construction and repair (`repro.taxogen`).

The last workload arc of the reproduction: instead of consuming a
*given* taxonomy, this subsystem scores candidate parent-child edges
with the PLM entailment head (:mod:`repro.taxogen.scoring`), plans and
applies typed repairs — insert missing nodes, re-parent misplaced ones,
prune spurious edges (:mod:`repro.taxogen.repair`) — and measures
repair quality against seeded perturbations
(:mod:`repro.taxogen.perturb`). Repaired taxonomies feed back into the
TaxoClass/WeSHClass workloads through the ``taxogen`` experiment table.

All failures surface as :class:`~repro.core.exceptions.TaxogenError`
subclasses; scoring and repair are instrumented with ``repro.obs``
spans (``taxogen:evidence`` / ``taxogen:score`` / ``taxogen:repair``)
and per-op counters (``taxogen.ops.*``).
"""

from repro.taxogen.perturb import (
    Perturbation,
    edge_recovery,
    perturb_dag,
    perturb_tree,
)
from repro.taxogen.repair import RepairOp, RepairPlan, TaxonomyRepairer
from repro.taxogen.scoring import ROOT_PRIOR, EdgeScorer, label_universe

__all__ = [
    "EdgeScorer",
    "label_universe",
    "ROOT_PRIOR",
    "TaxonomyRepairer",
    "RepairOp",
    "RepairPlan",
    "Perturbation",
    "perturb_tree",
    "perturb_dag",
    "edge_recovery",
]
