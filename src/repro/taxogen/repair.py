"""Taxonomy repair: insert missing nodes, re-parent misplaced ones,
prune spurious edges.

The repairer consumes an :class:`~repro.taxogen.scoring.EdgeScorer`
affinity matrix and emits a typed :class:`RepairPlan` — an ordered op
list that is computed *and* applied deterministically, so the same
corpus, label universe, and taxonomy always yield the same repaired
structure (the experiment DAG depends on that for bit-identical
reruns).

Op semantics (also DESIGN.md §15):

- **prune** (DAG mode only): a multi-parent node drops parents whose
  affinity falls below ``prune_ratio`` of its best parent's; the best
  parent is never pruned, so no node is orphaned.
- **reparent**: a node whose best eligible candidate parent beats its
  current worst parent by ``margin`` swaps that edge. Candidates are
  restricted to nodes currently in the taxonomy that are not the node
  itself or one of its descendants (no cycles, by construction); the
  virtual ROOT competes at :data:`~repro.taxogen.scoring.ROOT_PRIOR`.
- **insert**: a label in the scored universe missing from the taxonomy
  attaches under its best-scoring candidate parent (or ROOT).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.exceptions import RepairError, TaxonomyError
from repro.taxogen.scoring import ROOT_PRIOR, EdgeScorer
from repro.taxonomy.dag import LabelDAG
from repro.taxonomy.tree import ROOT, LabelTree


@dataclass(frozen=True)
class RepairOp:
    """One typed repair operation.

    ``kind`` is ``"insert"``, ``"reparent"``, or ``"prune"``; ``parent``
    is the edge's parent after the op (for prune: the parent removed);
    ``old_parent`` is set for reparent ops; ``score`` is the affinity
    that justified the op.
    """

    kind: str
    node: str
    parent: str
    old_parent: "str | None" = None
    score: float = 0.0


@dataclass(frozen=True)
class RepairPlan:
    """The ordered ops plus the edge sets they transform between."""

    ops: tuple
    edges_before: tuple
    edges_after: tuple
    top_level_after: tuple

    def counts(self) -> dict:
        """Op tally by kind (all three keys always present)."""
        out = {"insert": 0, "reparent": 0, "prune": 0}
        for op in self.ops:
            out[op.kind] += 1
        return out


def _parents_from_edges(edges, top_level) -> dict:
    parents: dict[str, set] = {}
    nodes: set[str] = set()
    for parent, child in edges:
        parents.setdefault(child, set()).add(parent)
        nodes.add(child)
        if parent != ROOT:
            nodes.add(parent)
    for node in top_level:
        parents.setdefault(node, set()).add(ROOT)
        nodes.add(node)
    for node in nodes:
        parents.setdefault(node, set())
    return parents


def _descendants(parents: dict, node: str) -> set:
    children: dict[str, set] = {}
    for child, ps in parents.items():
        for parent in ps:
            children.setdefault(parent, set()).add(child)
    seen: set[str] = set()
    frontier = [node]
    while frontier:
        current = frontier.pop()
        for child in children.get(current, ()):
            if child not in seen:
                seen.add(child)
                frontier.append(child)
    return seen


class TaxonomyRepairer:
    """Plan and apply entailment-scored taxonomy repairs.

    Parameters
    ----------
    scorer:
        The edge scorer whose label universe defines which nodes exist.
    margin:
        Minimum affinity advantage a candidate parent needs over the
        current one before a reparent fires (hysteresis against noise).
    prune_ratio:
        DAG mode: parents scoring below this fraction of the node's best
        parent are pruned.
    root_prior:
        Affinity stand-in for the virtual ROOT as candidate parent.
    """

    def __init__(self, scorer: EdgeScorer, margin: float = 0.15,
                 prune_ratio: float = 0.5, root_prior: float = ROOT_PRIOR):
        self.scorer = scorer
        self.margin = margin
        self.prune_ratio = prune_ratio
        self.root_prior = root_prior

    # -- public entry points -------------------------------------------------
    def repair_tree(self, tree: LabelTree) -> tuple:
        """``(repaired LabelTree, RepairPlan)`` for a tree taxonomy."""
        edges = [(tree.parent(n), n) for n in tree.nodes
                 if tree.parent(n) != ROOT]
        top = tree.children(ROOT)
        plan = self.plan_edges(edges, top_level=top, multi_parent=False)
        try:
            repaired = LabelTree.from_edges(
                [e for e in plan.edges_after], plan.top_level_after)
        except TaxonomyError as exc:
            raise RepairError(f"repaired tree is invalid: {exc}") from exc
        return repaired, plan

    def repair_dag(self, dag: LabelDAG) -> tuple:
        """``(repaired LabelDAG, RepairPlan)`` for a DAG taxonomy."""
        edges, top = [], []
        for node in dag.nodes:
            for parent in dag.parents(node):
                if parent == ROOT:
                    top.append(node)
                else:
                    edges.append((parent, node))
        plan = self.plan_edges(edges, top_level=top, multi_parent=True)
        try:
            repaired = LabelDAG([e for e in plan.edges_after],
                                top_level=plan.top_level_after)
        except TaxonomyError as exc:
            raise RepairError(f"repaired DAG is invalid: {exc}") from exc
        return repaired, plan

    # -- planning ------------------------------------------------------------
    def plan_edges(self, edges, top_level=(), multi_parent: bool = False) -> RepairPlan:
        """Compute the repair plan for a ``(parent, child)`` edge list."""
        parents = _parents_from_edges(edges, top_level)
        universe = list(self.scorer.labels)
        index = {l: i for i, l in enumerate(universe)}
        unknown = sorted(set(parents) - set(universe))
        if unknown:
            raise RepairError(
                f"taxonomy nodes {unknown} are outside the scored label "
                f"universe ({len(universe)} labels); score them or drop "
                "them before repair"
            )
        affinity = self.scorer.affinity_matrix()

        def score(child: str, parent: str) -> float:
            if parent == ROOT:
                return self.root_prior
            return float(affinity[index[child], index[parent]])

        ops: list[RepairOp] = []
        with obs.span("taxogen:repair", nodes=len(parents),
                      universe=len(universe)):
            if multi_parent:
                self._prune(parents, score, ops)
            self._reparent(parents, score, ops)
            self._insert(parents, universe, score, ops)
        for op in ops:
            obs.count(f"taxogen.ops.{op.kind}")

        edges_after = tuple(sorted(
            (parent, child) for child, ps in parents.items()
            for parent in ps if parent != ROOT))
        top_after = tuple(sorted(
            child for child, ps in parents.items() if ROOT in ps))
        return RepairPlan(
            ops=tuple(ops),
            edges_before=tuple(sorted(
                (p, c) for p, c in edges)),
            edges_after=edges_after,
            top_level_after=top_after,
        )

    # -- op passes -----------------------------------------------------------
    def _prune(self, parents: dict, score, ops: list) -> None:
        for node in sorted(parents):
            current = parents[node]
            if len(current) < 2:
                continue
            scored = sorted(((score(node, p), p) for p in current),
                            key=lambda t: (-t[0], t[1]))
            best = scored[0][0]
            for value, parent in scored[1:]:
                if value < self.prune_ratio * best:
                    current.discard(parent)
                    ops.append(RepairOp(kind="prune", node=node,
                                        parent=parent, score=value))

    def _reparent(self, parents: dict, score, ops: list) -> None:
        for node in sorted(parents):
            current = parents[node]
            if not current:
                continue
            worst = min(current, key=lambda p: (score(node, p), p))
            worst_score = score(node, worst)
            blocked = _descendants(parents, node) | {node} | current
            candidates = [(score(node, p), p) for p in sorted(parents)
                          if p not in blocked]
            candidates.append((self.root_prior, ROOT)
                              if ROOT not in current else (-1.0, ROOT))
            best_score, best = max(candidates, key=lambda t: (t[0], t[1]))
            if best_score > worst_score + self.margin:
                current.discard(worst)
                current.add(best)
                ops.append(RepairOp(kind="reparent", node=node, parent=best,
                                    old_parent=worst, score=best_score))

    def _insert(self, parents: dict, universe: list, score, ops: list) -> None:
        for node in sorted(set(universe) - set(parents)):
            candidates = [(score(node, p), p) for p in sorted(parents)
                          if p != node]
            candidates.append((self.root_prior, ROOT))
            best_score, best = max(candidates, key=lambda t: (t[0], t[1]))
            parents[node] = {best}
            ops.append(RepairOp(kind="insert", node=node, parent=best,
                                score=best_score))
