"""General-knowledge corpus for PLM pre-training.

The tutorial's methods transfer knowledge from language models pre-trained
on large general corpora (Wikipedia etc.). We synthesize the analogue: a
topically broad corpus drawn from *all* curated themes plus extra factory
topics, generated independently of any evaluation corpus. The PLM
pre-trained on it "knows" the label-name words of the benchmark profiles
the way BERT knows "sports" — from pre-training, not from the target task.
"""

from __future__ import annotations

import numpy as np

from repro.core.seeding import ensure_rng
from repro.core.types import Corpus, Document
from repro.datasets.profiles import ClassSpec, DatasetProfile, MixtureSpec
from repro.datasets.generator import build_world, generate_documents
from repro.datasets.words import CURATED_LEXICONS


def general_pretraining_profile(n_docs: int = 1500,
                                extra_themes: tuple = ()) -> DatasetProfile:
    """Profile of the synthetic general-knowledge corpus.

    Covers every curated theme (so all benchmark label names occur in
    pre-training) plus any ``extra_themes`` a caller needs covered (e.g.
    factory themes of a programmatic profile).
    """
    themes = list(CURATED_LEXICONS) + [t for t in extra_themes
                                       if t not in CURATED_LEXICONS]
    classes = tuple(ClassSpec(label=f"pt:{t}", theme=t, name=t) for t in themes)
    return DatasetProfile(
        name="general-pretraining",
        classes=classes,
        n_train=n_docs,
        n_test=0,
        doc_len=(12, 32),
        lexicon_size=48,
        mixture=MixtureSpec(core=0.5, ancestor=0.0, ambiguous=0.08,
                            background=0.36, noise=0.06, name_prob=0.7),
        domain="general",
        description="synthetic stand-in for a Wikipedia-scale pre-training corpus",
    )


def general_corpus(seed: "int | np.random.Generator" = 0, n_docs: int = 1500,
                   extra_themes: tuple = ()) -> Corpus:
    """Generate the general pre-training corpus."""
    rng = ensure_rng(seed)
    profile = general_pretraining_profile(n_docs=n_docs, extra_themes=extra_themes)
    world = build_world(profile)
    docs = generate_documents(world, n_docs, rng, id_prefix="pt-")
    return Corpus(docs, name="general-pretraining")
