"""Synthetic corpus generation from a :class:`DatasetProfile`.

Documents are sampled from a class-conditional token mixture (core lexicon,
ancestor lexicons, ambiguous words, shared background, cross-class noise)
with Zipf-distributed within-component word frequencies, mirroring the
topical structure of the tutorial's benchmark corpora. Gold labels are
attached to every document but are only exposed to methods through the
explicit document-level supervision formats.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.seeding import ensure_rng
from repro.core.types import Corpus, Document, LabelSet
from repro.datasets.profiles import ClassSpec, DatasetProfile
from repro.datasets.sampling import UniformSampler, ZipfSampler
from repro.datasets.words import (
    AMBIGUOUS_WORDS,
    WordFactory,
    background_lexicon,
    build_lexicon,
)
from repro.taxonomy.dag import LabelDAG
from repro.taxonomy.tree import ROOT as TREE_ROOT
from repro.taxonomy.tree import LabelTree


@dataclass
class GeneratorWorld:
    """Deterministic vocabulary world derived from a profile.

    Holds per-class lexicons, ambiguous-word pools, the background
    vocabulary, taxonomy structures, and the precomputed samplers shared
    by all document draws.
    """

    profile: DatasetProfile
    lexicons: dict = field(default_factory=dict)
    names: dict = field(default_factory=dict)
    ambiguous: dict = field(default_factory=dict)
    background: list = field(default_factory=list)
    tree: "LabelTree | None" = None
    dag: "LabelDAG | None" = None
    core_samplers: dict = field(default_factory=dict)
    background_sampler: "ZipfSampler | None" = None
    noise_samplers: dict = field(default_factory=dict)


def build_world(profile: DatasetProfile) -> GeneratorWorld:
    """Construct the vocabulary world for ``profile`` (pure function)."""
    factory = WordFactory()
    world = GeneratorWorld(profile=profile)
    for spec in profile.classes:
        lexicon = build_lexicon(spec.theme, profile.lexicon_size, factory)
        world.lexicons[spec.label] = lexicon
        world.names[spec.label] = spec.name or lexicon[0]
        world.ambiguous[spec.label] = []

    theme_to_labels: dict[str, list[str]] = {}
    for spec in profile.classes:
        theme_to_labels.setdefault(spec.theme, []).append(spec.label)
    for word, theme_a, theme_b in AMBIGUOUS_WORDS:
        if theme_a in theme_to_labels and theme_b in theme_to_labels:
            for label in theme_to_labels[theme_a] + theme_to_labels[theme_b]:
                if word not in world.ambiguous[label]:
                    world.ambiguous[label].append(word)
    labels = [c.label for c in profile.classes]
    for i in range(profile.n_shared_ambiguous):
        word = factory.word(f"{profile.name}:ambiguous", i)
        a = labels[i % len(labels)]
        b = labels[(i * 7 + 3) % len(labels)]
        if a == b:
            b = labels[(i * 7 + 4) % len(labels)]
        world.ambiguous[a].append(word)
        world.ambiguous[b].append(word)

    world.background = background_lexicon(factory)
    zipf = profile.mixture.zipf
    for label, lexicon in world.lexicons.items():
        world.core_samplers[label] = ZipfSampler(lexicon, zipf)
    world.background_sampler = ZipfSampler(world.background, zipf)
    for label in labels:
        other = [w for l2 in labels if l2 != label for w in world.lexicons[l2]]
        if other:
            world.noise_samplers[label] = UniformSampler(other)

    if profile.structure == "tree":
        parent_of = {
            c.label: (c.parent if c.parent else TREE_ROOT) for c in profile.classes
        }
        world.tree = LabelTree(parent_of)
    elif profile.structure == "dag":
        edges = [
            (p, c.label) for c in profile.classes for p in c.parents
        ]
        top = [c.label for c in profile.classes if not c.parents]
        world.dag = LabelDAG(edges, top_level=top)
    return world


def _ancestor_labels(world: GeneratorWorld, label: str) -> list:
    if world.tree is not None:
        return world.tree.path_to_root(label)[1:]
    if world.dag is not None:
        return sorted(world.dag.ancestors(label))
    return []


def _sample_tokens(world: GeneratorWorld, rng: np.random.Generator,
                   core_labels: list, length: int,
                   mixture=None) -> list:
    """Draw ``length`` tokens for a document with the given core classes.

    ``mixture`` overrides the profile mixture (sectioned documents tilt
    it per section)."""
    mix = mixture if mixture is not None else world.profile.mixture
    ancestors: list[str] = []
    for label in core_labels:
        ancestors.extend(_ancestor_labels(world, label))
    ambiguous_pool: list[str] = []
    for label in core_labels:
        ambiguous_pool.extend(world.ambiguous[label])

    probs = np.array(
        [
            mix.core,
            mix.ancestor if ancestors else 0.0,
            mix.ambiguous if ambiguous_pool else 0.0,
            mix.background,
            mix.noise if world.noise_samplers else 0.0,
        ]
    )
    probs = probs / probs.sum()
    counts = rng.multinomial(length, probs)

    tokens: list[str] = []
    # Core: split evenly across core classes.
    core_counts = rng.multinomial(counts[0], np.full(len(core_labels), 1.0 / len(core_labels)))
    for label, count in zip(core_labels, core_counts):
        tokens.extend(world.core_samplers[label].sample(rng, int(count)))
    if counts[1] and ancestors:
        anc_counts = rng.multinomial(counts[1], np.full(len(ancestors), 1.0 / len(ancestors)))
        for label, count in zip(ancestors, anc_counts):
            tokens.extend(world.core_samplers[label].sample(rng, int(count)))
    if counts[2] and ambiguous_pool:
        sampler = UniformSampler(ambiguous_pool)
        tokens.extend(sampler.sample(rng, int(counts[2])))
    assert world.background_sampler is not None
    tokens.extend(world.background_sampler.sample(rng, int(counts[3])))
    if counts[4]:
        noise = world.noise_samplers.get(core_labels[0])
        if noise is not None:
            tokens.extend(noise.sample(rng, int(counts[4])))

    perm = rng.permutation(len(tokens))
    tokens = [tokens[i] for i in perm]

    if rng.random() < mix.name_prob:
        for label in core_labels:
            name_tokens = world.names[label].split()
            pos = int(rng.integers(0, len(tokens) + 1))
            tokens[pos:pos] = name_tokens
    return tokens


def _sample_sectioned(world: GeneratorWorld, rng: np.random.Generator,
                      core_labels: list, length: int) -> tuple:
    """Tokens plus section spans for a section-structured document.

    Each :class:`~repro.datasets.profiles.SectionSpec` receives a share
    of the token budget proportional to its weight and samples with the
    profile mixture tilted by its ``core_boost`` (renormalized inside
    :func:`_sample_tokens`); the label-name injection probability is
    split across sections by the same weights so the per-document name
    coverage matches unsectioned profiles.
    """
    profile = world.profile
    sections = profile.sections
    weights = np.array([s.weight for s in sections], dtype=float)
    weights = weights / weights.sum()
    counts = rng.multinomial(max(length, len(sections)), weights)
    tokens: list[str] = []
    spans: list[dict] = []
    for spec, share, count in zip(sections, weights, counts):
        mix = replace(
            profile.mixture,
            core=profile.mixture.core * spec.core_boost,
            name_prob=profile.mixture.name_prob * float(share),
        )
        # Every section materializes with at least one token, so span
        # boundaries are always well-defined for section-aware readers.
        sec_tokens = _sample_tokens(world, rng, core_labels,
                                    max(1, int(count)), mixture=mix)
        spans.append({"name": spec.name, "start": len(tokens),
                      "end": len(tokens) + len(sec_tokens)})
        tokens.extend(sec_tokens)
    return tokens, spans


def _choose_core_labels(world: GeneratorWorld, rng: np.random.Generator) -> list:
    """Pick the core class(es) of one document."""
    profile = world.profile
    if not profile.multi_label:
        specs = profile.leaf_specs()
        weights = np.array([s.weight for s in specs], dtype=float)
        weights /= weights.sum()
        idx = int(rng.choice(len(specs), p=weights))
        return [specs[idx].label]
    # Multi-label: sample 1..k distinct core classes, biased toward deeper
    # nodes when a DAG is present.
    lo, hi = profile.core_labels_per_doc
    k = int(rng.integers(lo, hi + 1))
    specs = profile.leaf_specs()
    if world.dag is not None:
        depth = np.array([world.dag.depth(s.label) for s in specs], dtype=float)
        weights = depth * np.array([s.weight for s in specs])
    else:
        weights = np.array([s.weight for s in specs], dtype=float)
    weights /= weights.sum()
    k = min(k, len(specs))
    idx = rng.choice(len(specs), size=k, replace=False, p=weights)
    return [specs[i].label for i in idx]


def generate_documents(world: GeneratorWorld, count: int,
                       rng: np.random.Generator, id_prefix: str) -> list:
    """Generate ``count`` labeled documents."""
    profile = world.profile
    lo, hi = profile.doc_len
    docs: list[Document] = []
    for i in range(count):
        core = _choose_core_labels(world, rng)
        length = int(rng.integers(lo, hi + 1))
        metadata: dict = {"core_labels": list(core)}
        if profile.sections:
            tokens, spans = _sample_sectioned(world, rng, core, length)
            metadata["sections"] = spans
        else:
            tokens = _sample_tokens(world, rng, core, length)
        if profile.multi_label and world.dag is not None and profile.include_ancestors_in_labels:
            labels = tuple(sorted(world.dag.closure(core)))
        else:
            labels = tuple(sorted(set(core)))
        docs.append(
            Document(
                doc_id=f"{id_prefix}{i}",
                tokens=tokens,
                labels=labels,
                metadata=metadata,
            )
        )
    return docs


def build_label_set(world: GeneratorWorld) -> LabelSet:
    """Evaluation label set: leaves for trees, all nodes for flat/DAG."""
    profile = world.profile
    if profile.structure == "tree":
        assert world.tree is not None
        labels = tuple(world.tree.leaves())
    else:
        labels = tuple(c.label for c in profile.classes)
    names = {l: world.names[l] for l in world.names}
    descriptions = {
        label: (
            f"{world.names[label]} content about "
            + ", ".join(world.lexicons[label][1:5])
        )
        for label in world.lexicons
    }
    return LabelSet(labels=labels, names=names, descriptions=descriptions)


def generate_corpora(profile: DatasetProfile, seed: "int | np.random.Generator" = 0):
    """Generate (world, train corpus, test corpus) for ``profile``."""
    rng = ensure_rng(seed)
    world = build_world(profile)
    train = generate_documents(world, profile.n_train, rng, id_prefix=f"{profile.name}-tr-")
    test = generate_documents(world, profile.n_test, rng, id_prefix=f"{profile.name}-te-")
    if profile.metadata is not None:
        from repro.datasets.metadata_gen import attach_metadata

        attach_metadata(world, train + test, rng)
    return (
        world,
        Corpus(train, name=f"{profile.name}-train"),
        Corpus(test, name=f"{profile.name}-test"),
    )
