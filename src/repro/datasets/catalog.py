"""Catalog of benchmark look-alike dataset profiles.

Each profile mirrors the *structure* of a corpus used in the tutorial's
evaluation tables (class count, imbalance, hierarchy shape, metadata,
multi-labelness) at a CPU-friendly scale. Absolute corpus sizes are scaled
down by roughly two orders of magnitude; the benches compare method
*orderings*, which the scale preserves.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.datasets.bundle import DatasetBundle, load_bundle
from repro.datasets.profiles import (
    ClassSpec,
    DatasetProfile,
    MetadataSpec,
    MixtureSpec,
    SectionSpec,
)


def _flat(name: str, themes: list, n_train: int, n_test: int,
          weights: "list | None" = None, domain: str = "news",
          criterion: str = "topics", **kwargs) -> DatasetProfile:
    """Helper for flat single-label profiles (one class per theme)."""
    weights = weights or [1.0] * len(themes)
    classes = tuple(
        ClassSpec(label=theme, theme=theme, weight=w)
        for theme, w in zip(themes, weights)
    )
    return DatasetProfile(
        name=name, classes=classes, n_train=n_train, n_test=n_test,
        domain=domain, criterion=criterion, **kwargs,
    )


def _two_level_tree(name: str, coarse_to_fine: dict, n_train: int, n_test: int,
                    **kwargs) -> DatasetProfile:
    """Helper for two-level tree profiles.

    ``coarse_to_fine`` maps each coarse theme to its number of fine
    subclasses; fine classes get factory sub-themes under the coarse one.
    """
    classes: list[ClassSpec] = []
    for coarse, n_fine in coarse_to_fine.items():
        classes.append(ClassSpec(label=coarse, theme=coarse))
        for i in range(n_fine):
            classes.append(
                ClassSpec(
                    label=f"{coarse}.{i}",
                    theme=f"{coarse}-sub{i}",
                    parent=coarse,
                )
            )
    return DatasetProfile(
        name=name, classes=tuple(classes), n_train=n_train, n_test=n_test,
        structure="tree", **kwargs,
    )


def _dag(name: str, top_themes: list, mids_per_top: int, leaves_per_mid: int,
         n_train: int, n_test: int, **kwargs) -> DatasetProfile:
    """Helper for three-level DAG profiles.

    Every third mid-level node receives a second parent (the next top
    node), making the taxonomy a true DAG rather than a tree.
    """
    classes: list[ClassSpec] = []
    mid_labels: list[str] = []
    for t, top in enumerate(top_themes):
        classes.append(ClassSpec(label=top, theme=top))
        for m in range(mids_per_top):
            label = f"{top}.m{m}"
            parents = [top]
            if (t * mids_per_top + m) % 3 == 2 and len(top_themes) > 1:
                parents.append(top_themes[(t + 1) % len(top_themes)])
            classes.append(
                ClassSpec(label=label, theme=f"{top}-mid{m}", parents=tuple(parents))
            )
            mid_labels.append(label)
    for mid in mid_labels:
        for l in range(leaves_per_mid):
            classes.append(
                ClassSpec(
                    label=f"{mid}.l{l}",
                    theme=f"{mid}-leaf{l}",
                    parents=(mid,),
                )
            )
    return DatasetProfile(
        name=name, classes=tuple(classes), n_train=n_train, n_test=n_test,
        structure="dag", multi_label=True, **kwargs,
    )


def _build_catalog() -> dict:
    """All profiles, keyed by catalog name."""
    catalog: dict[str, DatasetProfile] = {}

    # ---- flat single-label profiles (WeSTClass/LOTClass/X-Class/Prompt) ----
    catalog["agnews"] = _flat(
        "agnews", ["politics", "sports", "business", "technology"],
        n_train=480, n_test=240,
        description="AG's News look-alike: 4 balanced news topics",
    )
    catalog["nyt_small"] = _flat(
        "nyt_small", ["politics", "arts", "business", "science", "sports"],
        n_train=400, n_test=200, weights=[16, 8, 4, 2, 1],
        description="NYT-Small look-alike: 5 imbalanced news topics",
    )
    catalog["nyt_topic"] = _flat(
        "nyt_topic",
        ["politics", "arts", "business", "science", "sports",
         "health", "education", "realestate", "technology"],
        n_train=540, n_test=270, weights=[27, 18, 12, 8, 6, 4, 3, 2, 1],
        description="NYT-Topic look-alike: 9 imbalanced news topics",
    )
    catalog["nyt_location"] = _flat(
        "nyt_location", [f"location{i}" for i in range(10)],
        n_train=500, n_test=250,
        weights=[16, 12, 9, 7, 5, 4, 3, 2, 1.5, 1],
        criterion="locations",
        description="NYT-Location look-alike: 10 location classes",
    )
    catalog["yelp"] = _flat(
        "yelp", ["positive", "negative"], n_train=400, n_test=200,
        domain="reviews", criterion="sentiment",
        description="Yelp polarity look-alike",
    )
    catalog["imdb"] = _flat(
        "imdb", ["positive", "negative"], n_train=400, n_test=200,
        domain="reviews", criterion="sentiment",
        description="IMDB polarity look-alike",
    )
    catalog["amazon_polarity"] = _flat(
        "amazon_polarity", ["positive", "negative"], n_train=400, n_test=200,
        domain="reviews", criterion="sentiment",
        description="Amazon review polarity look-alike",
    )
    catalog["dbpedia"] = _flat(
        "dbpedia",
        ["business", "education", "arts", "sports", "politics", "autos",
         "realestate", "nature", "military", "music", "film", "health",
         "travel", "weather"],
        n_train=560, n_test=280, domain="wikipedia", criterion="ontology",
        description="DBpedia-14 look-alike: 14 balanced ontology classes",
    )

    # ---- coarse/fine tree profiles (ConWea / WeSHClass) --------------------
    catalog["nyt_fine"] = _two_level_tree(
        "nyt_fine",
        {"politics": 5, "arts": 5, "business": 5, "science": 5, "sports": 5},
        n_train=600, n_test=300,
        n_shared_ambiguous=10,
        description="NYT look-alike tree: 5 coarse / 25 fine classes",
    )
    catalog["twenty_news"] = _two_level_tree(
        "twenty_news",
        {"technology": 5, "sports": 4, "science": 4, "politics": 3,
         "religion": 2, "business": 2},
        n_train=600, n_test=300,
        n_shared_ambiguous=10,
        description="20 Newsgroups look-alike tree: 6 coarse / 20 fine",
    )
    catalog["arxiv_tree"] = _two_level_tree(
        "arxiv_tree",
        {"technology": 3, "science": 3, "space": 3},
        n_train=450, n_test=225, domain="papers",
        description="arXiv look-alike tree: 3 coarse / 9 fine areas",
    )
    catalog["yelp_tree"] = _two_level_tree(
        "yelp_tree",
        {"positive": 2, "negative": 2},
        n_train=400, n_test=200, domain="reviews", criterion="sentiment",
        description="Yelp look-alike tree: polarity over intensity levels",
    )

    # ---- DAG multi-label profiles (TaxoClass) -------------------------------
    # Multi-label documents split their core mass across labels, so these
    # profiles use richer mixtures and longer documents (product pages and
    # encyclopedia articles are long and topical).
    multilabel_mixture = MixtureSpec(core=0.40, ancestor=0.12, ambiguous=0.04,
                                     background=0.32, noise=0.12)
    catalog["amazon_dag"] = _dag(
        "amazon_dag",
        ["technology", "food", "fashion", "gaming", "autos", "music"],
        mids_per_top=3, leaves_per_mid=2,
        n_train=500, n_test=250, domain="products", criterion="catalog",
        core_labels_per_doc=(1, 3), doc_len=(36, 72),
        mixture=multilabel_mixture,
        description="Amazon-531 look-alike DAG (60 nodes, scaled)",
    )
    catalog["dbpedia_dag"] = _dag(
        "dbpedia_dag",
        ["arts", "nature", "politics", "sports", "business"],
        mids_per_top=3, leaves_per_mid=1,
        n_train=400, n_test=200, domain="wikipedia", criterion="ontology",
        core_labels_per_doc=(1, 2), doc_len=(36, 72),
        mixture=multilabel_mixture,
        description="DBpedia-298 look-alike DAG (35 nodes, scaled)",
    )

    # ---- sectioned multi-label profile (FUTEX) ------------------------------
    # Full-text papers: the title/abstract are short and densely topical,
    # the body long and diffuse, the conclusion in between — the
    # signal-quality gradient cross-section evidence aggregation exploits.
    # Papers cite their fields: a heavier ancestor share (and fewer
    # cross-class noise tokens) gives the taxonomy-construction workload a
    # recoverable parent-child co-occurrence signal.
    paper_mixture = MixtureSpec(core=0.38, ancestor=0.22, ambiguous=0.04,
                                background=0.28, noise=0.08)
    catalog["arxiv_sections"] = _dag(
        "arxiv_sections",
        ["science", "technology", "space", "energy"],
        mids_per_top=2, leaves_per_mid=2,
        n_train=400, n_test=200, domain="papers", criterion="fields",
        core_labels_per_doc=(1, 3), doc_len=(48, 96),
        mixture=paper_mixture,
        sections=(
            SectionSpec("title", weight=0.08, core_boost=2.5),
            SectionSpec("abstract", weight=0.22, core_boost=1.8),
            SectionSpec("body", weight=0.55, core_boost=0.6),
            SectionSpec("conclusion", weight=0.15, core_boost=1.2),
        ),
        description="arXiv full-text look-alike: sectioned multi-label DAG "
                    "(28 nodes, title/abstract/body/conclusion)",
    )

    # ---- metadata profiles (MetaCat) ----------------------------------------
    github_meta = MetadataSpec(n_users=40, user_affinity=0.75,
                               tags_per_class=4, tags_per_doc=(1, 3), tag_noise=0.25)
    catalog["github_bio"] = _flat(
        "github_bio",
        ["science", "health", "nature", "technology", "education",
         "energy", "space", "food", "weather", "crime"],
        n_train=120, n_test=60, domain="github", metadata=github_meta,
        description="GitHub-Bio look-alike: 10 classes, tiny corpus, user+tag metadata",
    )
    catalog["github_ai"] = _flat(
        "github_ai",
        ["technology", "science", "gaming", "music", "film", "finance",
         "health", "autos", "space", "business", "education", "law",
         "arts", "sports"],
        n_train=220, n_test=110, domain="github", metadata=github_meta,
        description="GitHub-AI look-alike: 14 classes, small corpus, user+tag metadata",
    )
    catalog["github_sec"] = _flat(
        "github_sec", ["crime", "technology", "military"],
        n_train=700, n_test=350, domain="github", metadata=github_meta,
        description="GitHub-Sec look-alike: 3 classes, larger corpus, user+tag metadata",
    )
    catalog["amazon_meta"] = _flat(
        "amazon_meta",
        ["technology", "food", "fashion", "gaming", "autos",
         "music", "film", "sports", "health", "travel"],
        n_train=500, n_test=250, domain="reviews", metadata=github_meta,
        description="Amazon look-alike with user+product-tag metadata",
    )
    catalog["twitter"] = _flat(
        "twitter",
        ["politics", "sports", "music", "film", "food", "travel",
         "technology", "weather", "crime"],
        n_train=450, n_test=225, domain="tweets",
        metadata=MetadataSpec(n_users=60, user_affinity=0.8,
                              tags_per_class=3, tags_per_doc=(1, 2), tag_noise=0.2),
        doc_len=(12, 30),
        description="Twitter look-alike: 9 classes, short texts, user+hashtag metadata",
    )

    # ---- bibliographic multi-label profiles (MICoL) --------------------------
    biblio_meta = MetadataSpec(
        n_venues=12, venue_affinity=0.85,
        n_authors=60, authors_per_doc=(1, 3), author_affinity=0.8,
        references_per_doc=(2, 6), reference_same_label=0.8,
    )
    catalog["magcs"] = DatasetProfile(
        name="magcs",
        classes=tuple(
            [ClassSpec(label=t, theme=t) for t in
             ["technology", "science", "gaming", "finance", "space"]]
            + [ClassSpec(label=f"cstopic{i}", theme=f"cstopic{i}") for i in range(25)]
        ),
        n_train=500, n_test=250, multi_label=True, core_labels_per_doc=(1, 3),
        doc_len=(36, 72), mixture=multilabel_mixture,
        metadata=biblio_meta, domain="papers", criterion="fields",
        description="MAG-CS look-alike: 30 labels, multi-label, venue/author/reference metadata",
    )
    catalog["pubmed"] = DatasetProfile(
        name="pubmed",
        classes=tuple(
            [ClassSpec(label=t, theme=t) for t in
             ["health", "science", "nature", "food", "energy"]]
            + [ClassSpec(label=f"mesh{i}", theme=f"mesh{i}") for i in range(25)]
        ),
        n_train=500, n_test=250, multi_label=True, core_labels_per_doc=(1, 3),
        doc_len=(36, 72), mixture=multilabel_mixture,
        metadata=biblio_meta, domain="papers", criterion="mesh-terms",
        description="PubMed look-alike: 30 labels, multi-label, venue/author/reference metadata",
    )

    # ---- mixed-domain corpus for the X-Class PCA/clustering figures ---------
    catalog["mixed_domains"] = _flat(
        "mixed_domains",
        ["sports", "technology", "food", "law", "space"],
        n_train=300, n_test=150,
        description="5 well-separated domains for representation-quality figures",
    )

    # ---- 10x "XL" variants for the perf-regression harness ------------------
    # One per structural family (flat balanced, flat imbalanced, wide flat,
    # metadata) so scale benchmarks stress different corpus shapes without
    # 10x-ing the whole catalog (every profile is exercised by tests).
    for base in ("agnews", "nyt_small", "dbpedia", "github_bio"):
        profile = catalog[base].scaled(10.0)
        catalog[f"{base}_xl"] = replace(
            profile,
            name=f"{base}_xl",
            description=f"{catalog[base].description} (10x XL perf variant)",
        )
    return catalog


_CATALOG = _build_catalog()


def available_profiles() -> list:
    """Names of all catalog profiles."""
    return sorted(_CATALOG)


def get_profile(name: str) -> DatasetProfile:
    """The :class:`DatasetProfile` registered under ``name``."""
    try:
        return _CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; available: {', '.join(available_profiles())}"
        ) from None


def load_profile(name: str, seed: "int | np.random.Generator" = 0,
                 scale: float = 1.0) -> DatasetBundle:
    """Generate the dataset bundle for catalog profile ``name``.

    ``scale`` multiplies the train/test sizes (used by tests for speed).
    """
    profile = get_profile(name)
    if scale != 1.0:
        profile = profile.scaled(scale)
    return load_bundle(profile, seed=seed)
