"""Synthetic dataset substrate: generator, profiles, benchmark catalog."""

from repro.datasets.bundle import DatasetBundle, load_bundle
from repro.datasets.catalog import available_profiles, get_profile, load_profile
from repro.datasets.generator import build_world, generate_corpora
from repro.datasets.pretraining import general_corpus
from repro.datasets.profiles import (
    ClassSpec,
    DatasetProfile,
    MetadataSpec,
    MixtureSpec,
)

__all__ = [
    "DatasetBundle",
    "load_bundle",
    "load_profile",
    "get_profile",
    "available_profiles",
    "build_world",
    "generate_corpora",
    "general_corpus",
    "ClassSpec",
    "DatasetProfile",
    "MetadataSpec",
    "MixtureSpec",
]
