"""Dataset bundle: generated corpora plus supervision constructors.

A :class:`DatasetBundle` is what ``load_profile`` returns — everything an
experiment needs: train/test corpora, the label set, the taxonomy (when
hierarchical), and factory methods for each weak-supervision format
(label names, seed keywords, labeled documents).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.seeding import ensure_rng
from repro.core.supervision import Keywords, LabeledDocuments, LabelNames
from repro.core.types import Corpus, Document, LabelSet
from repro.datasets.generator import GeneratorWorld, build_label_set, generate_corpora
from repro.datasets.profiles import DatasetProfile
from repro.taxonomy.dag import LabelDAG
from repro.taxonomy.tree import LabelTree


@dataclass
class DatasetBundle:
    """Generated dataset: corpora, labels, taxonomy, supervision factories."""

    profile: DatasetProfile
    world: GeneratorWorld
    train_corpus: Corpus
    test_corpus: Corpus
    label_set: LabelSet

    # -- structure ----------------------------------------------------------
    @property
    def tree(self) -> "LabelTree | None":
        return self.world.tree

    @property
    def dag(self) -> "LabelDAG | None":
        return self.world.dag

    # -- supervision formats -------------------------------------------------
    def label_names(self) -> LabelNames:
        """Category-name-only supervision (LOTClass/X-Class/TaxoClass)."""
        return LabelNames(label_set=self.label_set)

    def keywords(self, per_class: int = 3, include_ambiguous: bool = True) -> Keywords:
        """Seed-keyword supervision.

        Takes the label name plus the next most-probable core words; when
        ``include_ambiguous`` and the class has ambiguous surface forms,
        one replaces the last slot (matching ConWea's setting where user
        seeds are not guaranteed unambiguous).
        """
        keywords: dict[str, list[str]] = {}
        for label in self.label_set:
            lexicon = self.world.lexicons[label]
            seeds = list(lexicon[:per_class])
            pool = self.world.ambiguous.get(label, [])
            if include_ambiguous and pool and per_class > 1:
                seeds[-1] = pool[0]
            keywords[label] = seeds
        return Keywords(label_set=self.label_set, keywords=keywords)

    def labeled_documents(self, per_class: int = 5,
                          seed: "int | np.random.Generator" = 0) -> LabeledDocuments:
        """Document-level supervision: ``per_class`` training docs per label.

        For multi-label profiles a document counts toward each of its core
        labels; selection is without replacement per label.
        """
        rng = ensure_rng(seed)
        by_label: dict[str, list[Document]] = {l: [] for l in self.label_set}
        order = rng.permutation(len(self.train_corpus))
        for i in order:
            doc = self.train_corpus[int(i)]
            core = doc.metadata.get("core_labels", list(doc.labels))
            for label in core:
                if label in by_label and len(by_label[label]) < per_class:
                    by_label[label].append(doc)
        return LabeledDocuments(label_set=self.label_set, documents=by_label)

    # -- hierarchical views ---------------------------------------------------
    def coarse_label_set(self) -> LabelSet:
        """Top-level labels of a tree profile."""
        if self.tree is None:
            raise ValueError(f"profile {self.profile.name!r} is not a tree")
        labels = tuple(self.tree.level(1))
        return LabelSet(
            labels=labels,
            names={l: self.world.names[l] for l in labels},
            descriptions={l: self.label_set.descriptions.get(l, l) for l in labels},
        )

    def coarse_gold(self, corpus: Corpus) -> list:
        """Gold top-level label per document of a tree profile."""
        if self.tree is None:
            raise ValueError(f"profile {self.profile.name!r} is not a tree")
        out = []
        for doc in corpus:
            leaf = doc.labels[0]
            out.append(self.tree.ancestor_at_depth(leaf, 1))
        return out

    # -- statistics -----------------------------------------------------------
    def stats(self) -> dict:
        """Dataset statistics (X-Class dataset table)."""
        counts: dict[str, int] = {l: 0 for l in self.label_set}
        for doc in list(self.train_corpus) + list(self.test_corpus):
            for label in doc.labels:
                if label in counts:
                    counts[label] += 1
        nonzero = [c for c in counts.values() if c > 0]
        imbalance = max(nonzero) / min(nonzero) if nonzero else float("nan")
        return {
            "name": self.profile.name,
            "domain": self.profile.domain,
            "criterion": self.profile.criterion,
            "n_classes": len(self.label_set),
            "n_documents": len(self.train_corpus) + len(self.test_corpus),
            "imbalance": round(imbalance, 2),
        }


def load_bundle(profile: DatasetProfile, seed: "int | np.random.Generator" = 0) -> DatasetBundle:
    """Generate the dataset for ``profile`` deterministically from ``seed``."""
    world, train, test = generate_corpora(profile, seed=seed)
    return DatasetBundle(
        profile=profile,
        world=world,
        train_corpus=train,
        test_corpus=test,
        label_set=build_label_set(world),
    )
