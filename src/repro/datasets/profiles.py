"""Dataset profile specifications.

A :class:`DatasetProfile` declares everything the synthetic generator needs
to emit a benchmark look-alike: the class structure (flat list, tree, or
DAG), corpus sizes, document length, the token-mixture knobs that control
task difficulty, and optional metadata (users, tags, authors, venues,
references).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class ClassSpec:
    """One category in a profile.

    Parameters
    ----------
    label:
        Canonical label id (unique within the profile).
    theme:
        Lexicon namespace; curated themes get hand-written words, others
        get factory pseudo-words.
    name:
        Surface name shown to label-name-only methods. Defaults to the
        first lexicon word of the theme.
    weight:
        Relative sampling proportion (drives class imbalance).
    parent:
        Tree parent label (``None`` = top level). Only for tree profiles.
    parents:
        DAG parent labels. Only for DAG profiles (empty = top level).
    """

    label: str
    theme: str
    name: "str | None" = None
    weight: float = 1.0
    parent: "str | None" = None
    parents: tuple = ()


@dataclass(frozen=True)
class MixtureSpec:
    """Token-mixture knobs controlling task difficulty.

    Probabilities of drawing each document token from: the class's core
    lexicon, its ancestors' lexicons (tree/DAG only), its ambiguous-word
    pool, the shared background vocabulary, or uniform cross-class noise.
    ``name_prob`` is the per-document probability of injecting the label's
    surface-name token explicitly (the label-name coverage knob LOTClass
    depends on).
    """

    core: float = 0.22
    ancestor: float = 0.08
    ambiguous: float = 0.08
    background: float = 0.44
    noise: float = 0.18
    name_prob: float = 0.45
    #: Zipf exponent for within-lexicon word distributions.
    zipf: float = 0.4


@dataclass(frozen=True)
class SectionSpec:
    """One section of a section-structured document (FUTEX profiles).

    Parameters
    ----------
    name:
        Section id recorded in ``doc.metadata["sections"]``.
    weight:
        Relative share of the document's tokens this section receives.
    core_boost:
        Multiplier on the mixture's core probability inside this
        section (renormalized). Values above 1 make the section more
        topical (title/abstract), below 1 more diffuse (body), which is
        the signal-quality gradient cross-section aggregation exploits.
    """

    name: str
    weight: float = 1.0
    core_boost: float = 1.0


@dataclass(frozen=True)
class MetadataSpec:
    """Metadata generation knobs (MetaCat / MICoL profiles).

    Affinity values are the probability that a metadata item attached to a
    document agrees with the document's class; the remainder is drawn
    uniformly, making metadata an informative-but-noisy signal.
    """

    n_users: int = 0
    user_affinity: float = 0.85
    tags_per_class: int = 4
    tags_per_doc: tuple = (0, 0)
    tag_noise: float = 0.15
    n_venues: int = 0
    venue_affinity: float = 0.85
    n_authors: int = 0
    authors_per_doc: tuple = (1, 3)
    author_affinity: float = 0.80
    references_per_doc: tuple = (0, 0)
    reference_same_label: float = 0.80


@dataclass(frozen=True)
class DatasetProfile:
    """Complete recipe for one synthetic benchmark look-alike."""

    name: str
    classes: tuple
    n_train: int
    n_test: int
    doc_len: tuple = (18, 40)
    lexicon_size: int = 48
    mixture: MixtureSpec = field(default_factory=MixtureSpec)
    structure: str = "flat"  # "flat" | "tree" | "dag"
    multi_label: bool = False
    core_labels_per_doc: tuple = (1, 3)
    include_ancestors_in_labels: bool = True
    #: Extra factory-generated ambiguous words shared between class pairs.
    n_shared_ambiguous: int = 0
    #: Section structure (empty = unsectioned). Sectioned documents carry
    #: per-section token spans in ``doc.metadata["sections"]``.
    sections: tuple = ()
    metadata: "MetadataSpec | None" = None
    domain: str = "news"
    criterion: str = "topics"
    description: str = ""

    def __post_init__(self) -> None:
        labels = [c.label for c in self.classes]
        if len(set(labels)) != len(labels):
            raise ValueError(f"profile {self.name!r} has duplicate class labels")
        if self.structure not in ("flat", "tree", "dag"):
            raise ValueError(f"unknown structure {self.structure!r}")

    def scaled(self, factor: float) -> "DatasetProfile":
        """A copy with corpus sizes scaled by ``factor`` (min 8 docs each)."""
        return replace(
            self,
            n_train=max(8, int(self.n_train * factor)),
            n_test=max(8, int(self.n_test * factor)),
        )

    def class_by_label(self, label: str) -> ClassSpec:
        """The :class:`ClassSpec` with the given ``label``."""
        for spec in self.classes:
            if spec.label == label:
                return spec
        raise KeyError(label)

    def leaf_specs(self) -> list:
        """Classes that documents are sampled from.

        Flat profiles: all classes. Tree profiles: classes that are not a
        parent of any other class. DAG profiles: all non-top classes plus
        leaves (documents pick core classes anywhere below the top level).
        """
        if self.structure == "flat":
            return list(self.classes)
        if self.structure == "tree":
            parents = {c.parent for c in self.classes if c.parent}
            return [c for c in self.classes if c.label not in parents]
        # DAG: any class can be a core class, but prefer deeper ones; the
        # generator handles the bias. Here we return every class.
        return list(self.classes)
