"""Metadata attachment for MetaCat / MICoL profiles.

Each metadata entity (user, author, venue) is assigned a *home class*;
attachments agree with a document's primary class with the configured
affinity and are uniform otherwise. Tags are drawn from class-specific tag
inventories with a noise rate. References preferentially link documents
sharing a label — exactly the structural signal MICoL's meta-paths exploit.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import Document
from repro.datasets.generator import GeneratorWorld
from repro.datasets.words import WordFactory


def _assign_homes(entities: list, labels: list, rng: np.random.Generator) -> dict:
    """Round-robin home-class assignment with shuffled entity order."""
    order = list(entities)
    rng.shuffle(order)
    return {e: labels[i % len(labels)] for i, e in enumerate(order)}


def _pick_affine(entities_by_home: dict, home: str, affinity: float,
                 all_entities: list, rng: np.random.Generator) -> str:
    """Pick an entity agreeing with ``home`` with probability ``affinity``."""
    candidates = entities_by_home.get(home, [])
    if candidates and rng.random() < affinity:
        return candidates[int(rng.integers(0, len(candidates)))]
    return all_entities[int(rng.integers(0, len(all_entities)))]


def attach_metadata(world: GeneratorWorld, documents: list, rng: np.random.Generator) -> None:
    """Attach metadata in-place to ``documents`` per the profile's spec."""
    spec = world.profile.metadata
    if spec is None:
        return
    labels = [c.label for c in world.profile.classes]
    factory = WordFactory()

    users = [f"u{i}" for i in range(spec.n_users)]
    user_home = _assign_homes(users, labels, rng) if users else {}
    users_by_home: dict[str, list[str]] = {}
    for user, home in user_home.items():
        users_by_home.setdefault(home, []).append(user)

    authors = [f"a{i}" for i in range(spec.n_authors)]
    author_home = _assign_homes(authors, labels, rng) if authors else {}
    authors_by_home: dict[str, list[str]] = {}
    for author, home in author_home.items():
        authors_by_home.setdefault(home, []).append(author)

    venues = [f"v{i}" for i in range(spec.n_venues)]
    venue_home = _assign_homes(venues, labels, rng) if venues else {}
    venues_by_home: dict[str, list[str]] = {}
    for venue, home in venue_home.items():
        venues_by_home.setdefault(home, []).append(venue)

    tags_of_class = {
        label: factory.words(f"tag:{label}", spec.tags_per_class)
        for label in labels
    } if spec.tags_per_doc[1] > 0 else {}
    all_tags = [t for tags in tags_of_class.values() for t in tags]

    docs_by_label: dict[str, list[str]] = {}

    for doc in documents:
        primary = doc.metadata.get("core_labels", list(doc.labels))[0]
        if users:
            doc.metadata["user"] = _pick_affine(
                users_by_home, primary, spec.user_affinity, users, rng
            )
        if authors:
            lo, hi = spec.authors_per_doc
            count = int(rng.integers(lo, hi + 1))
            doc.metadata["authors"] = [
                _pick_affine(authors_by_home, primary, spec.author_affinity, authors, rng)
                for _ in range(count)
            ]
        if venues:
            doc.metadata["venue"] = _pick_affine(
                venues_by_home, primary, spec.venue_affinity, venues, rng
            )
        if tags_of_class:
            lo, hi = spec.tags_per_doc
            count = int(rng.integers(lo, hi + 1))
            tags = []
            for _ in range(count):
                if rng.random() < spec.tag_noise:
                    tags.append(all_tags[int(rng.integers(0, len(all_tags)))])
                else:
                    pool = tags_of_class[primary]
                    tags.append(pool[int(rng.integers(0, len(pool)))])
            doc.metadata["tags"] = sorted(set(tags))
        if spec.references_per_doc[1] > 0:
            lo, hi = spec.references_per_doc
            count = int(rng.integers(lo, hi + 1))
            refs: list[str] = []
            same = docs_by_label.get(primary, [])
            everything = [d for pool in docs_by_label.values() for d in pool]
            for _ in range(count):
                if same and rng.random() < spec.reference_same_label:
                    refs.append(same[int(rng.integers(0, len(same)))])
                elif everything:
                    refs.append(everything[int(rng.integers(0, len(everything)))])
            doc.metadata["references"] = sorted(set(refs))
        for label in doc.labels:
            docs_by_label.setdefault(label, []).append(doc.doc_id)
