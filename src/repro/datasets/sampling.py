"""Fast categorical sampling helpers for the corpus generator."""

from __future__ import annotations

import numpy as np


class ZipfSampler:
    """Samples words from a Zipf-weighted categorical distribution.

    Rank-``i`` (0-based) word gets weight ``1 / (i + 2) ** s``. Sampling is
    via a precomputed CDF and ``searchsorted``, which is far faster than
    repeated ``Generator.choice`` calls with probabilities.
    """

    def __init__(self, words: list, zipf: float = 0.85):
        if not words:
            raise ValueError("ZipfSampler needs at least one word")
        self.words = list(words)
        weights = 1.0 / np.power(np.arange(2, len(words) + 2, dtype=float), zipf)
        self.probs = weights / weights.sum()
        self._cdf = np.cumsum(self.probs)
        self._cdf[-1] = 1.0

    def sample(self, rng: np.random.Generator, count: int) -> list:
        """``count`` i.i.d. words."""
        if count <= 0:
            return []
        idx = np.searchsorted(self._cdf, rng.random(count), side="right")
        return [self.words[i] for i in idx]

    def probability(self, word: str) -> float:
        """Probability mass of ``word`` (0 if absent)."""
        try:
            return float(self.probs[self.words.index(word)])
        except ValueError:
            return 0.0


class UniformSampler:
    """Uniform categorical sampling over a word list."""

    def __init__(self, words: list):
        if not words:
            raise ValueError("UniformSampler needs at least one word")
        self.words = list(words)

    def sample(self, rng: np.random.Generator, count: int) -> list:
        """``count`` i.i.d. uniform words."""
        if count <= 0:
            return []
        idx = rng.integers(0, len(self.words), size=count)
        return [self.words[i] for i in idx]
