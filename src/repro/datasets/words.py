"""Lexicon construction for the synthetic corpus generator.

Real benchmark corpora are unavailable offline, so the generator builds
class-conditional vocabularies from two sources:

- **curated lexicons**: small hand-written thematic word lists for common
  categories (sports, politics, ...) so examples and seed words read
  naturally;
- **a word factory**: deterministic pseudo-word synthesis from syllables,
  used to pad every lexicon to a target size and to create vocabulary for
  programmatically generated categories (fine-grained label sets, large
  taxonomies).

Ambiguous words — surface forms shared between two categories whose sense
depends on context — are first-class citizens because ConWea's entire
contribution is disambiguating them.
"""

from __future__ import annotations

import hashlib

from repro.text.stopwords import STOPWORDS

#: Hand-written thematic lexicons. The first entry doubles as the default
#: label-name token of a category with that theme.
CURATED_LEXICONS: dict = {
    "sports": """sports soccer football basketball baseball hockey tennis
        tournament championship league coach stadium athlete playoff striker
        referee olympics marathon""".split(),
    "politics": """politics election senate congress president campaign
        legislation democrat republican parliament diplomat governor policy
        ballot candidate constitution treaty""".split(),
    "technology": """technology software computer internet startup chip
        processor smartphone robotics encryption browser server database
        algorithm silicon gadget hardware""".split(),
    "business": """business market economy trade profit merger investor
        revenue shares earnings banking retail manufacturing startup ceo
        commerce inflation""".split(),
    "science": """science research physics chemistry biology experiment
        laboratory theory quantum genome particle telescope hypothesis
        molecule discovery researcher""".split(),
    "health": """health medicine hospital doctor vaccine disease patient
        therapy surgery clinic symptom diagnosis epidemic nutrition wellness
        pharmaceutical""".split(),
    "arts": """arts museum painting gallery sculpture theater opera ballet
        exhibition artist canvas curator portrait masterpiece festival
        aesthetic""".split(),
    "law": """law judge court lawsuit attorney verdict trial justice
        prosecutor defendant appeal statute felony testimony jury
        litigation""".split(),
    "food": """food restaurant recipe chef cuisine flavor dessert
        ingredient delicious kitchen menu organic bakery roasted savory
        gourmet""".split(),
    "travel": """travel airline hotel tourism passport destination cruise
        itinerary resort luggage adventure sightseeing airport vacation
        tropical journey""".split(),
    "education": """education school university student teacher curriculum
        tuition scholarship campus lecture homework graduate classroom
        professor semester literacy""".split(),
    "military": """military army soldier battalion weapon missile warfare
        combat troops defense general infantry artillery deployment
        ceasefire veteran""".split(),
    "music": """music concert album guitar orchestra melody singer rhythm
        symphony chorus lyrics band piano jazz vinyl acoustic""".split(),
    "film": """film movie cinema director actor screenplay premiere studio
        documentary trailer blockbuster animation oscar sequel audience
        script""".split(),
    "finance": """finance bond currency hedge portfolio dividend equity
        mortgage credit interest asset liquidity broker futures yield
        treasury""".split(),
    "weather": """weather storm hurricane forecast rainfall temperature
        blizzard drought humidity thunder tornado climate snowfall sunshine
        barometer frost""".split(),
    "crime": """crime police robbery arrest detective homicide burglary
        suspect investigation fraud smuggling warrant forensic gang vandal
        theft""".split(),
    "space": """space nasa rocket satellite orbit astronaut galaxy lunar
        spacecraft cosmos asteroid telescope mars module launch
        interstellar""".split(),
    "gaming": """gaming videogame console player quest multiplayer arcade
        esports joystick avatar level dungeon streamer tournament pixel
        modding""".split(),
    "nature": """nature forest wildlife river mountain ecosystem species
        conservation habitat glacier wetland biodiversity canyon meadow
        coral ranger""".split(),
    "energy": """energy solar petroleum pipeline turbine reactor electricity
        renewable grid drilling refinery coal hydrogen wind nuclear
        barrel""".split(),
    "autos": """autos automobile engine sedan dealership hybrid motor
        chassis transmission horsepower roadster braking mileage
        convertible diesel suv""".split(),
    "religion": """religion church temple prayer faith scripture worship
        clergy pilgrimage monastery ritual sermon sacred theology
        congregation bishop""".split(),
    "fashion": """fashion designer runway couture fabric boutique apparel
        stylist garment trend silhouette tailoring accessories vogue
        textile wardrobe""".split(),
    "realestate": """realestate property apartment landlord mortgage tenant
        condominium brokerage renovation listing suburb zoning skyscraper
        lease downtown acreage""".split(),
    "positive": """excellent wonderful amazing fantastic delightful superb
        perfect loved brilliant charming impressive outstanding terrific
        enjoyable refreshing marvelous""".split(),
    "negative": """terrible awful horrible disappointing mediocre rude
        dirty broken worst unacceptable bland overpriced slow noisy
        frustrating dreadful""".split(),
}

#: Ambiguous surface forms shared by two themes; sense = document class.
#: Each tuple is (word, theme_a, theme_b). ConWea seed lists deliberately
#: include some of these.
AMBIGUOUS_WORDS: list = [
    ("penalty", "sports", "law"),
    ("court", "sports", "law"),
    ("goal", "sports", "business"),
    ("pitch", "sports", "business"),
    ("apple", "technology", "food"),
    ("stock", "business", "food"),
    ("cell", "science", "crime"),
    ("virus", "health", "technology"),
    ("star", "space", "film"),
    ("interest", "finance", "education"),
    ("charge", "law", "energy"),
    ("conductor", "music", "energy"),
    ("race", "sports", "politics"),
    ("party", "politics", "food"),
    ("bank", "finance", "nature"),
]

_CONSONANTS = "bcdfglmnprstvz"
_VOWELS = "aeiou"
_SYLLABLES = [c + v for c in _CONSONANTS for v in _VOWELS]


class WordFactory:
    """Deterministic pseudo-word synthesis.

    Words are built from consonant-vowel syllables. The sequence for a
    given ``(namespace, index)`` is a pure function of those inputs, so the
    same topic always receives the same vocabulary across runs and
    processes. Collisions with stop words, curated words, and previously
    issued words are resolved by probing.
    """

    def __init__(self) -> None:
        self._issued: set[str] = set()
        for lexicon in CURATED_LEXICONS.values():
            self._issued.update(lexicon)

    def _candidate(self, namespace: str, index: int, probe: int) -> str:
        digest = hashlib.sha256(f"{namespace}|{index}|{probe}".encode()).digest()
        n_syll = 2 + digest[0] % 3
        return "".join(
            _SYLLABLES[digest[1 + i] % len(_SYLLABLES)] for i in range(n_syll)
        )

    def word(self, namespace: str, index: int) -> str:
        """The ``index``-th pseudo-word of ``namespace``."""
        for probe in range(64):
            cand = self._candidate(namespace, index, probe)
            if cand in STOPWORDS or cand in self._issued:
                continue
            self._issued.add(cand)
            return cand
        raise RuntimeError(f"word factory exhausted for {namespace}:{index}")

    def words(self, namespace: str, count: int, start: int = 0) -> list[str]:
        """``count`` consecutive pseudo-words of ``namespace``."""
        return [self.word(namespace, start + i) for i in range(count)]


def build_lexicon(theme: str, size: int, factory: WordFactory) -> list[str]:
    """A ``size``-word lexicon for ``theme``.

    Starts from the curated list when one exists (its first word is the
    theme's label name) and pads with factory words. For unknown themes
    the first factory word acts as the label name.
    """
    base = list(CURATED_LEXICONS.get(theme, []))
    if len(base) >= size:
        return base[:size]
    base += factory.words(theme, size - len(base))
    return base


def background_lexicon(factory: WordFactory, size: int = 120) -> list[str]:
    """Class-neutral filler vocabulary (generic nouns/verbs)."""
    curated = """said today report people group city official week
        member plan public state place work program news service area
        house street company world country national day home part case
        point question story change team office water line month result""".split()
    if len(curated) >= size:
        return curated[:size]
    return curated + factory.words("background", size - len(curated))
