"""Neural-network layers on top of the autograd tensor.

Weight initialization uses explicit generators so models are reproducible;
every layer exposes ``parameters()`` for the optimizers.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor, concatenate, get_default_dtype


class Module:
    """Base class: parameter collection and train/eval mode."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> list:
        """All trainable tensors of this module and its children."""
        params: list[Tensor] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            found: list[Tensor] = []
            if isinstance(value, Tensor) and value.requires_grad:
                found = [value]
            elif isinstance(value, Module):
                found = value.parameters()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        found.extend(item.parameters())
                    elif isinstance(item, Tensor) and item.requires_grad:
                        found.append(item)
            for p in found:
                if id(p) not in seen:
                    seen.add(id(p))
                    params.append(p)
        return params

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear gradients of all parameters (see ``Tensor.zero_grad``)."""
        for p in self.parameters():
            p.zero_grad(set_to_none=set_to_none)

    def train(self) -> "Module":
        """Switch to training mode (dropout active)."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Switch to inference mode (dropout off)."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.data.size for p in self.parameters())

    def state_dict(self) -> list:
        """Flat list of parameter arrays (copy), in parameters() order."""
        return [p.data.copy() for p in self.parameters()]

    def load_state_dict(self, state: list) -> None:
        """Load arrays saved by :meth:`state_dict`."""
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} arrays, model has {len(params)} parameters"
            )
        for p, array in zip(params, state):
            if p.data.shape != array.shape:
                raise ValueError(f"shape mismatch: {p.data.shape} vs {array.shape}")
            # Cast to the parameter's dtype so checkpoints written under a
            # different default dtype load into this model's compute dtype.
            p.data = array.astype(p.data.dtype)


class Linear(Module):
    """Affine map ``x @ W + b`` with Glorot-uniform init."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        limit = np.sqrt(6.0 / (in_features + out_features))
        dtype = get_default_dtype()
        self.weight = Tensor(
            rng.uniform(-limit, limit, size=(in_features, out_features)),
            requires_grad=True, dtype=dtype,
        )
        self.bias = (
            Tensor(np.zeros(out_features, dtype=dtype), requires_grad=True)
            if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token-id to vector lookup table."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator,
                 scale: float = 0.02):
        super().__init__()
        self.weight = Tensor(
            rng.normal(0.0, scale, size=(num_embeddings, dim)),
            requires_grad=True, dtype=get_default_dtype(),
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        return self.weight.take_rows(ids)


class LayerNorm(Module):
    """Layer normalization with learned gain/bias."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        dtype = get_default_dtype()
        self.gain = Tensor(np.ones(dim, dtype=dtype), requires_grad=True)
        self.bias = Tensor(np.zeros(dim, dtype=dtype), requires_grad=True)
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.gain, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout driven by an explicit generator."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        # Build the keep-mask in the layer's compute dtype: an
        # ``astype(float)`` here would upcast every training batch.
        keep = (self.rng.random(x.shape) >= self.p).astype(x.data.dtype)
        keep *= 1.0 / (1.0 - self.p)
        return x * Tensor(keep)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.modules = list(modules)

    def forward(self, x):
        """Apply the layer."""
        for module in self.modules:
            x = module(x)
        return x


class MultiHeadSelfAttention(Module):
    """Multi-head self-attention over (B, T, D) inputs.

    ``forward`` returns the attended values. When ``store_attention`` is
    enabled the post-softmax attention probabilities of the last call are
    kept on ``last_attention`` (X-Class consumes them for
    attention-weighted pooling). It defaults to off: retaining a
    (B, H, T, T) array per layer per forward bloats memory during
    pre-training and batched encoding for a value only one consumer reads.
    """

    def __init__(self, dim: int, n_heads: int, rng: np.random.Generator,
                 store_attention: bool = False):
        super().__init__()
        if dim % n_heads != 0:
            raise ValueError(f"dim {dim} not divisible by n_heads {n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.qkv = Linear(dim, 3 * dim, rng)
        self.out = Linear(dim, dim, rng)
        self.store_attention = store_attention
        self.last_attention: "np.ndarray | None" = None

    def forward(self, x: Tensor, pad_mask: "np.ndarray | None" = None) -> Tensor:
        batch, seq, _ = x.shape
        qkv = self.qkv(x)  # (B, T, 3D)
        qkv = qkv.reshape(batch, seq, 3, self.n_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, H, T, Dh)
        q, k, v = qkv[0], qkv[1], qkv[2]
        mask = None
        if pad_mask is not None and pad_mask.any():
            # pad_mask: (B, T) True at padding -> block keys at padded slots.
            # Padding-free batches (common with length-bucketed inference)
            # skip the mask entirely; an all-False mask is a no-op anyway.
            mask = pad_mask[:, None, None, :]
        logits = F.attention_scores(q, k)
        attn = F.masked_softmax(logits, mask, axis=-1)
        if self.store_attention:
            self.last_attention = attn.data
        context = attn @ v  # (B, H, T, Dh)
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.out(context)


class FeedForward(Module):
    """Position-wise feed-forward block with GELU."""

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.fc1 = Linear(dim, hidden, rng)
        self.fc2 = Linear(hidden, dim, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.fc1(x).gelu())


class TransformerBlock(Module):
    """Pre-norm transformer encoder block."""

    def __init__(self, dim: int, n_heads: int, ff_hidden: int,
                 rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, n_heads, rng)
        self.norm2 = LayerNorm(dim)
        self.ff = FeedForward(dim, ff_hidden, rng)
        self.drop = Dropout(dropout, rng) if dropout > 0 else None

    def forward(self, x: Tensor, pad_mask: "np.ndarray | None" = None) -> Tensor:
        attended = self.attn(self.norm1(x), pad_mask=pad_mask)
        if self.drop is not None:
            attended = self.drop(attended)
        x = x + attended
        ff_out = self.ff(self.norm2(x))
        if self.drop is not None:
            ff_out = self.drop(ff_out)
        return x + ff_out


__all__ = [
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "MultiHeadSelfAttention",
    "FeedForward",
    "TransformerBlock",
    "concatenate",
]
