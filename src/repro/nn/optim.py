"""Optimizers for autograd parameters.

Every update runs in place: moment/velocity buffers are preallocated in
each parameter's dtype at construction, one shared-shape scratch buffer
per parameter absorbs the intermediate products, and ``step`` never
rebinds ``p.data`` or ``p.grad`` — the only allocations in a training
step belong to the forward/backward graph. ``clip_grad_norm`` likewise
scales gradients in place after a single squared-norm accumulation pass.
"""

from __future__ import annotations

import numpy as np

from repro import obs


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, parameters: list):
        self.parameters = list(parameters)

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear gradients of the tracked parameters.

        ``set_to_none=True`` (default) drops the buffers — the cheapest
        path, since backward assigns fresh leaf gradients anyway;
        ``False`` zero-fills in place so the allocations are reused.
        """
        for p in self.parameters:
            p.zero_grad(set_to_none=set_to_none)

    def step(self) -> None:
        """Apply one update from the current gradients."""
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Global-norm gradient clipping; returns the pre-clip norm.

        One pass accumulates the squared norm (per-array partial sums in
        the gradient dtype via ``np.vdot``'s pairwise reduction, combined
        in float64), then gradients are scaled in place — no per-parameter
        temporaries.
        """
        total = 0.0
        for p in self.parameters:
            if p.grad is not None:
                flat = p.grad.reshape(-1)
                total += float(np.vdot(flat, flat))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for p in self.parameters:
                if p.grad is not None:
                    np.multiply(p.grad, scale, out=p.grad)
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum (in-place)."""

    def __init__(self, parameters: list, lr: float = 0.1, momentum: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        self._buf = [np.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        obs.count("nn.optimizer_steps")
        for p, v, buf in zip(self.parameters, self._velocity, self._buf):
            if p.grad is None:
                continue
            update = p.grad
            if self.momentum:
                v *= self.momentum
                v += update
                update = v
            np.multiply(update, self.lr, out=buf)
            p.data -= buf


class Adam(Optimizer):
    """Adam with optional decoupled weight decay (AdamW when set).

    Fully in-place: first/second moments and one scratch buffer per
    parameter are preallocated in the parameter's dtype; ``step`` performs
    no allocations.
    """

    def __init__(self, parameters: list, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._buf = [np.empty_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        obs.count("nn.optimizer_steps")
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        decay = 1.0 - self.lr * self.weight_decay
        for p, m, v, buf in zip(self.parameters, self._m, self._v, self._buf):
            if p.grad is None:
                continue
            grad = p.grad
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=buf)
            m += buf
            v *= self.beta2
            np.multiply(grad, grad, out=buf)
            buf *= 1.0 - self.beta2
            v += buf
            # buf = lr * (m / bias1) / (sqrt(v / bias2) + eps)
            np.divide(v, bias2, out=buf)
            np.sqrt(buf, out=buf)
            buf += self.eps
            np.divide(m, buf, out=buf)
            buf *= self.lr / bias1
            if self.weight_decay:
                # p -= lr*(update + wd*p)  ==  p *= (1 - lr*wd); p -= lr*update
                p.data *= decay
            p.data -= buf
