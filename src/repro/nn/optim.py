"""Optimizers for autograd parameters."""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, parameters: list):
        self.parameters = list(parameters)

    def zero_grad(self) -> None:
        """Clear gradients of the tracked parameters."""
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update from the current gradients."""
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Global-norm gradient clipping; returns the pre-clip norm."""
        total = 0.0
        for p in self.parameters:
            if p.grad is not None:
                total += float((p.grad**2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for p in self.parameters:
                if p.grad is not None:
                    p.grad = p.grad * scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list, lr: float = 0.1, momentum: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam with optional decoupled weight decay (AdamW when set)."""

    def __init__(self, parameters: list, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            p.data -= self.lr * update
