"""Minimal numpy autograd + neural-network substrate.

A reverse-mode automatic differentiation engine (:class:`~repro.nn.tensor.Tensor`)
with the layers, losses, and optimizers needed by the PLM substrate and the
neural text classifiers. Deliberately small: dense tensors, static graphs
rebuilt per step, no GPU.
"""

from repro.nn import functional
from repro.nn.layers import (
    Dropout,
    Embedding,
    FeedForward,
    LayerNorm,
    Linear,
    Module,
    MultiHeadSelfAttention,
    Sequential,
    TransformerBlock,
)
from repro.nn.losses import (
    binary_cross_entropy_with_logits,
    cross_entropy,
    kl_divergence_with_logits,
)
from repro.nn.functional import fused_enabled, set_fused
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import (
    Tensor,
    default_dtype,
    get_default_dtype,
    inference_mode,
    is_grad_enabled,
    no_grad,
    set_default_dtype,
)

__all__ = [
    "Tensor",
    "inference_mode",
    "no_grad",
    "is_grad_enabled",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
    "fused_enabled",
    "set_fused",
    "functional",
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "MultiHeadSelfAttention",
    "FeedForward",
    "TransformerBlock",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "kl_divergence_with_logits",
    "SGD",
    "Adam",
]
