"""Composite tensor functions and fused training kernels.

The hot training-path functions (softmax, log-softmax, masked attention
softmax, layer norm, and — in :mod:`repro.nn.losses` — softmax
cross-entropy) each exist in two forms:

- a **fused kernel**: one graph node whose forward and backward are
  single hand-written numpy passes (no intermediate graph nodes, no
  per-op closure allocations), and
- a **composite reference**: the same function built from primitive
  autograd ops, kept as the correctness oracle for the gradcheck suite
  and as the baseline the training bench measures against.

Fused execution is the default; ``set_fused(False)`` or
``REPRO_NN_FUSED=0`` selects the composite path. Both paths are
dtype-preserving (see :mod:`repro.nn.tensor`).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core import env as _env
from repro.nn.tensor import Tensor, _unbroadcast, get_default_dtype, is_grad_enabled

_FUSED = _env.nn_fused()

#: Finite stand-in for -inf in masked softmax: large enough that exp()
#: underflows to exactly 0, small enough to be float32-representable.
_MASK_FILL = -1e9


def fused_enabled() -> bool:
    """Whether the fused training kernels are active."""
    return _FUSED


def set_fused(flag: bool) -> bool:
    """Toggle fused kernels (benchmark/gradcheck hook); returns previous."""
    global _FUSED
    previous = _FUSED
    _FUSED = bool(flag)
    return previous


def _ensure_float(x) -> np.ndarray:
    """Plain-numpy input normalization that never silently upcasts.

    Floating arrays keep their dtype; everything else converts to the
    engine default dtype.
    """
    x = np.asarray(x)  # dtype: preserve
    if x.dtype.kind != "f":
        x = x.astype(get_default_dtype())
    return x


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    if not _FUSED:
        shifted = x - x.max(axis=axis, keepdims=True).detach()
        exp = shifted.exp()
        return exp / exp.sum(axis=axis, keepdims=True)
    obs.count("nn.fused_dispatches")
    data = x.data
    probs = data - data.max(axis=axis, keepdims=True)
    np.exp(probs, out=probs)
    probs /= probs.sum(axis=axis, keepdims=True)
    if not (is_grad_enabled() and x.requires_grad):
        return Tensor(probs)

    def backward(grad):
        gp = grad * probs
        gp -= probs * gp.sum(axis=axis, keepdims=True)
        return (gp,)

    return x._make(probs, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    if not _FUSED:
        shifted = x - x.max(axis=axis, keepdims=True).detach()
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()
    obs.count("nn.fused_dispatches")
    data = x.data
    out = data - data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(out).sum(axis=axis, keepdims=True))
    out -= lse
    if not (is_grad_enabled() and x.requires_grad):
        return Tensor(out)

    def backward(grad):
        return (grad - np.exp(out) * grad.sum(axis=axis, keepdims=True),)

    return x._make(out, (x,), backward)


def masked_softmax(x: Tensor, mask: "np.ndarray | None", axis: int = -1) -> Tensor:
    """Softmax with blocked entries: one pass for masked-fill + softmax.

    ``mask`` is broadcastable to ``x`` and True where attention must be
    blocked; blocked entries get exactly zero probability and zero
    gradient. Rows that are fully blocked degrade to a uniform
    distribution (the historical ``masked_fill(-1e9)`` behaviour).
    """
    if mask is None:
        return softmax(x, axis=axis)
    if not _FUSED:
        return softmax(x.masked_fill(mask, _MASK_FILL), axis=axis)
    obs.count("nn.fused_dispatches")
    mask = np.asarray(mask, dtype=bool)
    probs = np.where(mask, _MASK_FILL, x.data)
    probs -= probs.max(axis=axis, keepdims=True)
    np.exp(probs, out=probs)
    probs /= probs.sum(axis=axis, keepdims=True)
    if not (is_grad_enabled() and x.requires_grad):
        return Tensor(probs)

    def backward(grad):
        gp = grad * probs
        gp -= probs * gp.sum(axis=axis, keepdims=True)
        np.copyto(gp, 0.0, where=np.broadcast_to(mask, gp.shape))
        return (gp,)

    return x._make(probs, (x,), backward)


def layer_norm(x: Tensor, gain: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last axis (fused forward + backward)."""
    if not _FUSED:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * (var + eps) ** -0.5
        return normed * gain + bias
    obs.count("nn.fused_dispatches")
    data = x.data
    d = data.shape[-1]
    xhat = data - data.mean(axis=-1, keepdims=True)
    inv = (xhat * xhat).mean(axis=-1, keepdims=True)
    inv += eps
    np.sqrt(inv, out=inv)
    np.reciprocal(inv, out=inv)
    xhat *= inv
    out = xhat * gain.data + bias.data
    if not is_grad_enabled():
        return Tensor(out)

    def backward(grad):
        # dx = inv * (dxhat - mean(dxhat) - xhat * mean(dxhat * xhat))
        dxhat = grad * gain.data
        dx = dxhat - dxhat.mean(axis=-1, keepdims=True)
        dx -= xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
        dx *= inv
        dgain = _unbroadcast(grad * xhat, gain.shape)
        dbias = _unbroadcast(grad, bias.shape)
        return (dx, dgain, dbias)

    return x._make(out, (x, gain, bias), backward)


def attention_scores(q: Tensor, k: Tensor, mask: "np.ndarray | None" = None) -> Tensor:
    """Scaled dot-product attention logits with optional padding mask.

    ``q``/``k`` are (..., T, Dh); ``mask`` is broadcastable to (..., T, T)
    and True where attention must be blocked. The attention layer itself
    feeds the unmasked logits to :func:`masked_softmax` instead; the
    ``mask`` parameter remains for direct consumers.
    """
    d_head = q.shape[-1]
    logits = (q @ k.swapaxes(-1, -2)) * (1.0 / float(np.sqrt(d_head)))
    if mask is not None:
        logits = logits.masked_fill(mask, _MASK_FILL)
    return logits


def cosine_similarity(a: np.ndarray, b: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Plain numpy cosine similarity between row sets: (n, d) x (m, d) -> (n, m)."""
    a = _ensure_float(a)
    b = _ensure_float(b)
    a_norm = a / (np.linalg.norm(a, axis=-1, keepdims=True) + eps)
    b_norm = b / (np.linalg.norm(b, axis=-1, keepdims=True) + eps)
    return a_norm @ b_norm.T


def l2_normalize(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Row-wise L2 normalization (plain numpy, dtype-preserving)."""
    x = _ensure_float(x)
    return x / (np.linalg.norm(x, axis=-1, keepdims=True) + eps)


def masked_mean_pool(hidden: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Mean over the rows of ``hidden`` selected by boolean ``keep``.

    ``keep`` may be shorter than ``hidden`` (extra rows are padding or a
    substituted placeholder token and are never pooled). When nothing is
    kept — an empty or fully-masked selection — falls back to the plain
    mean over all rows, so degenerate documents still yield a vector.
    """
    keep = np.asarray(keep, dtype=bool)
    if keep.any():
        return hidden[: keep.size][keep].mean(axis=0)
    return hidden.mean(axis=0)
