"""Composite tensor functions built from primitive autograd ops."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def layer_norm(x: Tensor, gain: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last axis."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    var = (centered * centered).mean(axis=-1, keepdims=True)
    normed = centered * (var + eps) ** -0.5
    return normed * gain + bias


def attention_scores(q: Tensor, k: Tensor, mask: "np.ndarray | None" = None) -> Tensor:
    """Scaled dot-product attention logits with optional padding mask.

    ``q``/``k`` are (..., T, Dh); ``mask`` is broadcastable to (..., T, T)
    and True where attention must be blocked.
    """
    d_head = q.shape[-1]
    logits = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(d_head))
    if mask is not None:
        logits = logits.masked_fill(mask, -1e9)
    return logits


def cosine_similarity(a: np.ndarray, b: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Plain numpy cosine similarity between row sets: (n, d) x (m, d) -> (n, m)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    a_norm = a / (np.linalg.norm(a, axis=-1, keepdims=True) + eps)
    b_norm = b / (np.linalg.norm(b, axis=-1, keepdims=True) + eps)
    return a_norm @ b_norm.T


def l2_normalize(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Row-wise L2 normalization (plain numpy)."""
    x = np.asarray(x, dtype=float)
    return x / (np.linalg.norm(x, axis=-1, keepdims=True) + eps)


def masked_mean_pool(hidden: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Mean over the rows of ``hidden`` selected by boolean ``keep``.

    ``keep`` may be shorter than ``hidden`` (extra rows are padding or a
    substituted placeholder token and are never pooled). When nothing is
    kept — an empty or fully-masked selection — falls back to the plain
    mean over all rows, so degenerate documents still yield a vector.
    """
    keep = np.asarray(keep, dtype=bool)
    if keep.any():
        return hidden[: keep.size][keep].mean(axis=0)
    return hidden.mean(axis=0)
