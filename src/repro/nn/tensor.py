"""Reverse-mode autograd over numpy arrays.

Supports the operation set required by a transformer encoder and the
library's classifiers: broadcasting arithmetic, matmul, reductions,
reshaping, indexing/gather, and the standard nonlinearities. Gradients are
accumulated in ``Tensor.grad`` by :meth:`Tensor.backward`, which performs a
topological sweep over the recorded graph.
"""

from __future__ import annotations

import numpy as np

_GRAD_ENABLED = True


class inference_mode:
    """Context manager disabling autograd for the ops inside it.

    Tensor operations executed under ``inference_mode()`` allocate neither
    backward closures nor graph edges: results are plain value tensors with
    ``requires_grad=False`` regardless of their inputs. This is the
    read-only evaluation path of the PLM inference engine — forwards that
    never call :meth:`Tensor.backward` skip all graph bookkeeping and the
    memory retention that comes with it. Re-entrant; restores the previous
    state on exit.
    """

    __slots__ = ("_previous",)

    def __enter__(self) -> "inference_mode":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous
        return False


#: Alias matching the more common torch spelling.
no_grad = inference_mode


def is_grad_enabled() -> bool:
    """Whether ops currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with gradient tracking.

    Build graphs with the overloaded operators and the methods below; call
    :meth:`backward` on a scalar result to populate ``grad`` on every
    reachable tensor with ``requires_grad=True``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: "np.ndarray | None" = None
        self._backward = None
        self._parents: tuple = ()

    # -- graph construction helpers ------------------------------------------
    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: tuple, backward) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED:
            out.requires_grad = any(p.requires_grad for p in parents)
            if out.requires_grad:
                out._parents = parents
                out._backward = backward
        return out

    @property
    def shape(self) -> tuple:
        """Array shape."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    def __len__(self) -> int:
        return len(self.data)

    def item(self) -> float:
        """Python float of a scalar tensor."""
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """A tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    # -- arithmetic ------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (_unbroadcast(grad, self.shape), _unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (
                _unbroadcast(grad * other.data, self.shape),
                _unbroadcast(grad * self.data, other.shape),
            )

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1.0),)

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                return (grad * b, grad * a)
            if a.ndim == 1:  # (k,) @ (k, n)
                return (grad @ np.swapaxes(b, -1, -2), np.outer(a, grad))
            if b.ndim == 1:  # (..., k) @ (k,) -> (...)
                grad_a = np.expand_dims(grad, -1) * b
                leading = list(range(grad.ndim))
                grad_b = np.tensordot(grad, a, axes=(leading, leading))
                return (grad_a, grad_b)
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            return (_unbroadcast(grad_a, a.shape), _unbroadcast(grad_b, b.shape))

        return self._make(out_data, (self, other), backward)

    # -- nonlinearities ---------------------------------------------------------
    def exp(self) -> "Tensor":
        """Element-wise exponential."""
        out_data = np.exp(self.data)
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (grad * out_data,)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Element-wise natural log."""
        out_data = np.log(self.data)
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (grad / self.data,)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        """Element-wise tanh."""
        out_data = np.tanh(self.data)
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (grad * (1.0 - out_data**2),)

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        """Element-wise max(x, 0)."""
        out_data = np.maximum(self.data, 0.0)
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (grad * (self.data > 0.0),)

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Element-wise logistic sigmoid."""
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (grad * out_data * (1.0 - out_data),)

        return self._make(out_data, (self,), backward)

    def gelu(self) -> "Tensor":
        """tanh-approximation GELU (as used by BERT)."""
        c = np.sqrt(2.0 / np.pi)
        x = self.data
        inner = c * (x + 0.044715 * (x * x * x))
        t = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + t)
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            dinner = c * (1.0 + 3 * 0.044715 * (x * x))
            dt = (1.0 - t * t) * dinner
            return (grad * (0.5 * (1.0 + t) + 0.5 * x * dt),)

        return self._make(out_data, (self,), backward)

    # -- reductions ---------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes when None)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, self.shape).copy(),)

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Mean over ``axis`` (all axes when None)."""
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``; gradient splits across ties."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            g = np.asarray(grad)
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out_data, axis)
            mask = (self.data == out).astype(float)
            mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            return (mask * g,)

        return self._make(out_data, (self,), backward)

    # -- shape ops -------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """View with a new shape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (grad.reshape(original),)

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        """Permute axes (reversed when omitted)."""
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (grad.transpose(inverse),)

        return self._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        """Exchange two axes."""
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        shape = self.shape
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            full = np.zeros(shape, dtype=float)
            np.add.at(full, index, grad)
            return (full,)

        return self._make(out_data, (self,), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows (embedding lookup): self is (V, D), indices any shape."""
        idx = np.asarray(indices, dtype=np.int64)
        out_data = self.data[idx]
        shape = self.shape
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            full = np.zeros(shape, dtype=float)
            np.add.at(full, idx.reshape(-1), grad.reshape(-1, shape[-1]))
            return (full,)

        return self._make(out_data, (self,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Replace entries where ``mask`` is True with ``value``."""
        mask = np.asarray(mask, dtype=bool)
        out_data = np.where(mask, value, self.data)
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (np.where(mask, 0.0, grad),)

        return self._make(out_data, (self,), backward)

    # -- backward pass --------------------------------------------------------------------
    def backward(self, grad: "np.ndarray | None" = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1.0 and must match this tensor's shape
        otherwise. Accumulates into ``.grad`` of every requires-grad leaf.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited or not node.requires_grad:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node.grad = node_grad if node.grad is None else node.grad + node_grad
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if not parent.requires_grad or pgrad is None:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = np.asarray(pgrad, dtype=np.float64)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"


def concatenate(tensors: list, axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(grad):
        return tuple(np.split(grad, splits, axis=axis))

    probe = Tensor(out_data)
    probe.requires_grad = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    if probe.requires_grad:
        probe._parents = tuple(tensors)
        probe._backward = backward
    return probe


def stack(tensors: list, axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        return tuple(np.moveaxis(grad, axis, 0))

    probe = Tensor(out_data)
    probe.requires_grad = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    if probe.requires_grad:
        probe._parents = tuple(tensors)
        probe._backward = backward
    return probe
