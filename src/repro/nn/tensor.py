"""Reverse-mode autograd over numpy arrays.

Supports the operation set required by a transformer encoder and the
library's classifiers: broadcasting arithmetic, matmul, reductions,
reshaping, indexing/gather, and the standard nonlinearities. Gradients are
accumulated in ``Tensor.grad`` by :meth:`Tensor.backward`, which performs a
topological sweep over the recorded graph.

Dtype policy
------------
The engine is *dtype-preserving*: an op's result has the dtype numpy
promotion gives its (floating) inputs, and every backward kernel emits
gradients in the dtype of the forward value. Non-float inputs (python
scalars, int arrays, lists) are converted to the configurable **default
dtype** — float32 unless overridden by :func:`set_default_dtype` or the
``REPRO_NN_DTYPE`` environment variable. Training at float32 halves the
memory bandwidth of every gradient step; float64 remains one switch away
for gradient checking.
"""

from __future__ import annotations

import numpy as np

from repro.core import env as _env

_GRAD_ENABLED = True

#: Per-op profile hook (observability): when set, called with the backward
#: closure's qualname on every graph-node creation. ``None`` (the default)
#: costs one global load per op — see ``benchmarks/bench_obs_overhead.py``.
_OP_HOOK = None


def set_op_hook(hook) -> None:
    """Install (or clear, with ``None``) the per-op profile hook.

    The hook receives the creating op's backward qualname (e.g.
    ``Tensor.__mul__.<locals>.backward``) once per graph node recorded in
    grad mode. ``repro.obs`` installs one when tracing is enabled under
    ``REPRO_NN_PROFILE=1``; nothing else should need to.
    """
    global _OP_HOOK
    _OP_HOOK = hook

_ALLOWED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def _resolve_dtype(dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in _ALLOWED_DTYPES:
        raise ValueError(
            f"default dtype must be float32 or float64, got {dtype!r}"
        )
    return resolved


_DEFAULT_DTYPE = _resolve_dtype(_env.nn_dtype())


def get_default_dtype() -> np.dtype:
    """The dtype non-float data is converted to when it enters the graph."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> np.dtype:
    """Set the default compute dtype; returns the previous one.

    Affects tensors and parameters created *afterwards* — switch before
    building a model. ``float64`` is the gradcheck configuration;
    ``float32`` (the default) is the training configuration.
    """
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = _resolve_dtype(dtype)
    return previous


class default_dtype:
    """Context manager scoping :func:`set_default_dtype` (tests, gradcheck)."""

    __slots__ = ("_dtype", "_previous")

    def __init__(self, dtype):
        self._dtype = _resolve_dtype(dtype)

    def __enter__(self) -> np.dtype:
        self._previous = set_default_dtype(self._dtype)
        return self._dtype

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_default_dtype(self._previous)
        return False


class inference_mode:
    """Context manager disabling autograd for the ops inside it.

    Tensor operations executed under ``inference_mode()`` allocate neither
    backward closures nor graph edges: results are plain value tensors with
    ``requires_grad=False`` regardless of their inputs. This is the
    read-only evaluation path of the PLM inference engine — forwards that
    never call :meth:`Tensor.backward` skip all graph bookkeeping and the
    memory retention that comes with it. Re-entrant; restores the previous
    state on exit.
    """

    __slots__ = ("_previous",)

    def __enter__(self) -> "inference_mode":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous
        return False


#: Alias matching the more common torch spelling.
no_grad = inference_mode


def is_grad_enabled() -> bool:
    """Whether ops currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with gradient tracking.

    Build graphs with the overloaded operators and the methods below; call
    :meth:`backward` on a scalar result to populate ``grad`` on every
    reachable tensor with ``requires_grad=True``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        if dtype is not None:
            self.data = np.asarray(data, dtype=dtype)
        elif getattr(data, "dtype", None) is not None and data.dtype.kind == "f":
            self.data = np.asarray(data)  # dtype: preserve
        else:
            self.data = np.asarray(data, dtype=_DEFAULT_DTYPE)
        self.requires_grad = bool(requires_grad)
        self.grad: "np.ndarray | None" = None
        self._backward = None
        self._parents: tuple = ()

    # -- graph construction helpers ------------------------------------------
    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: tuple, backward) -> "Tensor":
        if _OP_HOOK is not None:
            _OP_HOOK(backward.__qualname__)
        out = Tensor(data)
        if _GRAD_ENABLED:
            out.requires_grad = any(p.requires_grad for p in parents)
            if out.requires_grad:
                out._parents = parents
                out._backward = backward
        return out

    @property
    def shape(self) -> tuple:
        """Array shape."""
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        """Array dtype."""
        return self.data.dtype

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    def __len__(self) -> int:
        return len(self.data)

    def item(self) -> float:
        """Python float of a scalar tensor."""
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """A tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    # -- arithmetic ------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        # Scalar fast path: python numbers promote weakly (a float32 array
        # plus 1.0 stays float32) — lifting them to 0-d default-dtype
        # tensors would upcast narrower operands and add a graph edge.
        if isinstance(other, (int, float)):
            out_data = self.data + other
            if not _GRAD_ENABLED:
                return Tensor(out_data)

            def backward(grad):
                return (grad,)

            return self._make(out_data, (self,), backward)
        other = self._lift(other)
        out_data = self.data + other.data
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (_unbroadcast(grad, self.shape), _unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            scalar = other
            out_data = self.data * scalar
            if not _GRAD_ENABLED:
                return Tensor(out_data)

            def backward(grad):
                return (grad * scalar,)

            return self._make(out_data, (self,), backward)
        other = self._lift(other)
        out_data = self.data * other.data
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (
                _unbroadcast(grad * other.data, self.shape),
                _unbroadcast(grad * self.data, other.shape),
            )

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            return self + (-other)
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            return (-self) + other
        return self._lift(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            return self * (1.0 / other)
        other = self._lift(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            return self ** -1.0 * other
        return self._lift(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1.0),)

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                return (grad * b, grad * a)
            if a.ndim == 1:  # (k,) @ (k, n)
                return (grad @ np.swapaxes(b, -1, -2), np.outer(a, grad))
            if b.ndim == 1:  # (..., k) @ (k,) -> (...)
                grad_a = np.expand_dims(grad, -1) * b
                leading = list(range(grad.ndim))
                grad_b = np.tensordot(grad, a, axes=(leading, leading))
                return (grad_a, grad_b)
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            return (_unbroadcast(grad_a, a.shape), _unbroadcast(grad_b, b.shape))

        return self._make(out_data, (self, other), backward)

    # -- nonlinearities ---------------------------------------------------------
    def exp(self) -> "Tensor":
        """Element-wise exponential."""
        out_data = np.exp(self.data)
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (grad * out_data,)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Element-wise natural log."""
        out_data = np.log(self.data)
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (grad / self.data,)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        """Element-wise tanh."""
        out_data = np.tanh(self.data)
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (grad * (1.0 - out_data**2),)

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        """Element-wise max(x, 0)."""
        out_data = np.maximum(self.data, 0.0)
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (grad * (self.data > 0.0),)

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Element-wise logistic sigmoid."""
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (grad * out_data * (1.0 - out_data),)

        return self._make(out_data, (self,), backward)

    def gelu(self) -> "Tensor":
        """tanh-approximation GELU (as used by BERT)."""
        c = float(np.sqrt(2.0 / np.pi))  # python float: np scalars upcast f32
        x = self.data
        inner = c * (x + 0.044715 * (x * x * x))
        t = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + t)
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            dinner = c * (1.0 + 3 * 0.044715 * (x * x))
            dt = (1.0 - t * t) * dinner
            return (grad * (0.5 * (1.0 + t) + 0.5 * x * dt),)

        return self._make(out_data, (self,), backward)

    # -- reductions ---------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes when None)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, self.shape).copy(),)

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Mean over ``axis`` (all axes when None)."""
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``; gradient splits across ties."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out_data, axis)
            mask = (self.data == out).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            return (mask * g,)

        return self._make(out_data, (self,), backward)

    # -- shape ops -------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """View with a new shape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (grad.reshape(original),)

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        """Permute axes (reversed when omitted)."""
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (grad.transpose(inverse),)

        return self._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        """Exchange two axes."""
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        shape = self.shape
        dtype = self.data.dtype
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        # Basic indexing (ints/slices) selects each element at most once,
        # so the backward is a plain assignment; only advanced (array)
        # indexing can revisit elements and needs the slow scatter-add.
        parts = index if isinstance(index, tuple) else (index,)
        basic = all(
            isinstance(p, (int, np.integer, slice)) or p is None
            or p is Ellipsis
            for p in parts
        )

        def backward(grad):
            full = np.zeros(shape, dtype=dtype)
            if basic:
                full[index] = grad
            else:
                np.add.at(full, index, grad)
            return (full,)

        return self._make(out_data, (self,), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows (embedding lookup): self is (V, D), indices any shape."""
        idx = np.asarray(indices, dtype=np.int64)
        out_data = self.data[idx]
        shape = self.shape
        dtype = self.data.dtype
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            # Sorted segmented reduction: grouping duplicate ids and
            # summing each group with one reduceat beats np.add.at's
            # element-wise scatter on every batch size that matters here.
            full = np.zeros(shape, dtype=dtype)
            flat_idx = idx.reshape(-1)
            flat_grad = grad.reshape(-1, shape[-1])
            order = np.argsort(flat_idx, kind="stable")
            sorted_idx = flat_idx[order]
            starts = np.flatnonzero(np.diff(sorted_idx, prepend=-1))
            full[sorted_idx[starts]] = np.add.reduceat(
                flat_grad[order], starts, axis=0
            )
            return (full,)

        return self._make(out_data, (self,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Replace entries where ``mask`` is True with ``value``."""
        mask = np.asarray(mask, dtype=bool)
        out_data = np.where(mask, value, self.data)
        if not _GRAD_ENABLED:
            return Tensor(out_data)

        def backward(grad):
            return (np.where(mask, 0.0, grad),)

        return self._make(out_data, (self,), backward)

    # -- backward pass --------------------------------------------------------------------
    def backward(self, grad: "np.ndarray | None" = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1.0 and must match this tensor's shape
        otherwise. Accumulates into ``.grad`` of every requires-grad leaf.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar tensor")
            grad = np.ones_like(self.data)
        seed = np.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited or not node.requires_grad:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): seed}
        # Arrays already handed out as some leaf's ``.grad``: a backward
        # kernel may return the *same* array (or views of it) for several
        # parents, and leaf grads must be safe for the optimizers to
        # mutate in place.
        assigned: set[int] = set()
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                if node_grad.dtype != node.data.dtype:
                    node_grad = node_grad.astype(node.data.dtype)
                if node.grad is None:
                    if (node_grad.base is not None
                            or not node_grad.flags.owndata
                            or node_grad is seed
                            or id(node_grad) in assigned):
                        node_grad = node_grad.copy()
                    node.grad = node_grad
                    assigned.add(id(node_grad))
                else:
                    np.add(node.grad, node_grad, out=node.grad)
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if not parent.requires_grad or pgrad is None:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = np.asarray(pgrad)  # dtype: preserve

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear the accumulated gradient.

        ``set_to_none=True`` (the fast path) drops the buffer so the next
        backward assigns instead of accumulating; ``False`` keeps the
        allocation and zero-fills it in place.
        """
        if set_to_none or self.grad is None:
            self.grad = None
        else:
            self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"


def concatenate(tensors: list, axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(grad):
        return tuple(np.split(grad, splits, axis=axis))

    probe = Tensor(out_data)
    probe.requires_grad = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    if probe.requires_grad:
        probe._parents = tuple(tensors)
        probe._backward = backward
    return probe


def stack(tensors: list, axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        return tuple(np.moveaxis(grad, axis, 0))

    probe = Tensor(out_data)
    probe.requires_grad = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    if probe.requires_grad:
        probe._parents = tuple(tensors)
        probe._backward = backward
    return probe
