"""Loss functions over autograd tensors."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: "int | None" = None) -> Tensor:
    """Mean cross-entropy of integer ``targets`` under ``logits``.

    ``logits`` is (..., C); ``targets`` the matching integer array. Entries
    equal to ``ignore_index`` contribute nothing (masked-LM convention).
    """
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = F.log_softmax(logits, axis=-1)
    flat = log_probs.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1)
    if ignore_index is not None:
        keep = flat_targets != ignore_index
        if not keep.any():
            return Tensor(0.0)
        rows = np.flatnonzero(keep)
        picked = flat[rows, flat_targets[rows]]
    else:
        picked = flat[np.arange(flat_targets.size), flat_targets]
    return -picked.mean()


def soft_cross_entropy(logits: Tensor, target_probs: np.ndarray) -> Tensor:
    """Mean cross-entropy against soft target distributions (self-training)."""
    target = np.asarray(target_probs, dtype=float)
    log_probs = F.log_softmax(logits, axis=-1)
    per_example = -(Tensor(target) * log_probs).sum(axis=-1)
    return per_example.mean()


def kl_divergence_with_logits(logits: Tensor, target_probs: np.ndarray) -> Tensor:
    """Mean KL(target || softmax(logits)) — WeSTClass self-training loss."""
    target = np.asarray(target_probs, dtype=float)
    log_probs = F.log_softmax(logits, axis=-1)
    entropy = float(-(target * np.log(np.clip(target, 1e-12, None))).sum(axis=-1).mean())
    cross = -(Tensor(target) * log_probs).sum(axis=-1).mean()
    return cross - entropy


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray,
                                     weights: "np.ndarray | None" = None) -> Tensor:
    """Mean element-wise binary cross-entropy on raw logits.

    Stable formulation: ``max(x, 0) - x*y + log(1 + exp(-|x|))``.
    """
    y = Tensor(np.asarray(targets, dtype=float))
    x = logits
    abs_term = ((x * x) ** 0.5)  # |x| with usable gradient away from 0
    loss = x.relu() - x * y + (1.0 + (-abs_term).exp()).log()
    if weights is not None:
        loss = loss * Tensor(np.asarray(weights, dtype=float))
    return loss.mean()


def margin_ranking_loss(positive: Tensor, negative: Tensor, margin: float = 0.5) -> Tensor:
    """Mean hinge ranking loss: positives should beat negatives by ``margin``."""
    return (negative - positive + margin).relu().mean()


def info_nce(similarities: Tensor, temperature: float = 0.1) -> Tensor:
    """InfoNCE over a similarity matrix whose diagonal holds positives.

    ``similarities`` is (B, B): row i scores anchor i against candidate j;
    entry (i, i) is the positive pair (MICoL contrastive objective).
    """
    logits = similarities * (1.0 / temperature)
    targets = np.arange(logits.shape[0])
    return cross_entropy(logits, targets)
