"""Loss functions over autograd tensors.

``cross_entropy`` and ``soft_cross_entropy`` run as *fused* kernels by
default: one graph node computes shifted-logit log-sum-exp, picks/blends
the target log-probabilities, and the backward pass emits the classic
``(softmax - target) / N`` gradient in a single pass — instead of the
log-softmax → gather → mean chain of graph nodes the composite path
builds. ``repro.nn.functional.set_fused(False)`` restores the composite
reference implementations (the gradcheck oracle and bench baseline).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.nn import functional as F
from repro.nn.tensor import Tensor, is_grad_enabled


def _flat_logsumexp(flat: np.ndarray) -> tuple:
    """(shifted logits, per-row logsumexp of the shifted logits)."""
    shifted = flat - flat.max(axis=1, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    return shifted, lse


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: "int | None" = None) -> Tensor:
    """Mean cross-entropy of integer ``targets`` under ``logits``.

    ``logits`` is (..., C); ``targets`` the matching integer array. Entries
    equal to ``ignore_index`` contribute nothing (masked-LM convention).
    """
    targets = np.asarray(targets, dtype=np.int64)
    if not F.fused_enabled():
        log_probs = F.log_softmax(logits, axis=-1)
        flat = log_probs.reshape(-1, logits.shape[-1])
        flat_targets = targets.reshape(-1)
        if ignore_index is not None:
            keep = flat_targets != ignore_index
            if not keep.any():
                return Tensor(0.0)
            rows = np.flatnonzero(keep)
            picked = flat[rows, flat_targets[rows]]
        else:
            picked = flat[np.arange(flat_targets.size), flat_targets]
        return -picked.mean()

    obs.count("nn.fused_dispatches")
    data = logits.data
    n_classes = data.shape[-1]
    flat = data.reshape(-1, n_classes)
    flat_targets = targets.reshape(-1)
    if ignore_index is not None:
        rows = np.flatnonzero(flat_targets != ignore_index)
        if rows.size == 0:
            return Tensor(np.zeros((), dtype=data.dtype))
        if rows.size == flat_targets.size:
            rows = None  # nothing ignored: skip the row gather
    else:
        rows = None
    kept = flat if rows is None else flat[rows]
    kept_targets = flat_targets if rows is None else flat_targets[rows]
    n_kept = kept.shape[0]
    shifted, lse = _flat_logsumexp(kept)
    picked = shifted[np.arange(n_kept), kept_targets]
    loss = np.asarray((lse.sum() - picked.sum()) / n_kept, dtype=data.dtype)
    if not (is_grad_enabled() and logits.requires_grad):
        return Tensor(loss)

    def backward(grad):
        # d loss / d logits = (softmax - onehot) / n_kept on kept rows.
        probs = np.exp(shifted - lse)
        probs[np.arange(n_kept), kept_targets] -= 1.0
        probs *= np.asarray(grad, dtype=data.dtype) / n_kept
        if rows is None:
            return (probs.reshape(data.shape),)
        full = np.zeros_like(flat)
        full[rows] = probs
        return (full.reshape(data.shape),)

    return logits._make(loss, (logits,), backward)


def soft_cross_entropy(logits: Tensor, target_probs: np.ndarray) -> Tensor:
    """Mean cross-entropy against soft target distributions (self-training).

    Target rows need not sum to one (sample-weighted self-training scales
    them); the gradient accounts for the row mass exactly.
    """
    if not F.fused_enabled():
        target = np.asarray(target_probs, dtype=logits.data.dtype)
        log_probs = F.log_softmax(logits, axis=-1)
        per_example = -(Tensor(target) * log_probs).sum(axis=-1)
        return per_example.mean()

    obs.count("nn.fused_dispatches")
    data = logits.data
    target = np.asarray(target_probs, dtype=data.dtype)
    n_classes = data.shape[-1]
    flat = data.reshape(-1, n_classes)
    flat_target = target.reshape(-1, n_classes)
    n = flat.shape[0]
    shifted, lse = _flat_logsumexp(flat)
    row_mass = flat_target.sum(axis=1, keepdims=True)
    per_example = row_mass[:, 0] * lse[:, 0] - (flat_target * shifted).sum(axis=1)
    loss = np.asarray(per_example.sum() / n, dtype=data.dtype)
    if not (is_grad_enabled() and logits.requires_grad):
        return Tensor(loss)

    def backward(grad):
        # d loss / d logits = (row_mass * softmax - target) / N per row.
        probs = np.exp(shifted - lse)
        probs *= row_mass
        probs -= flat_target
        probs *= np.asarray(grad, dtype=data.dtype) / n
        return (probs.reshape(data.shape),)

    return logits._make(loss, (logits,), backward)


def kl_divergence_with_logits(logits: Tensor, target_probs: np.ndarray) -> Tensor:
    """Mean KL(target || softmax(logits)) — WeSTClass self-training loss."""
    target = np.asarray(target_probs, dtype=logits.data.dtype)
    # Keep the constant in the compute dtype: a python-float entropy would
    # lift to the (possibly narrower) default dtype and lose precision.
    entropy = -(target * np.log(np.clip(target, 1e-12, None))).sum(axis=-1).mean()
    return soft_cross_entropy(logits, target) - entropy


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray,
                                     weights: "np.ndarray | None" = None) -> Tensor:
    """Mean element-wise binary cross-entropy on raw logits.

    Stable formulation: ``max(x, 0) - x*y + log(1 + exp(-|x|))``.
    """
    y = Tensor(np.asarray(targets, dtype=logits.data.dtype))
    x = logits
    abs_term = ((x * x) ** 0.5)  # |x| with usable gradient away from 0
    loss = x.relu() - x * y + (1.0 + (-abs_term).exp()).log()
    if weights is not None:
        loss = loss * Tensor(np.asarray(weights, dtype=logits.data.dtype))
    return loss.mean()


def margin_ranking_loss(positive: Tensor, negative: Tensor, margin: float = 0.5) -> Tensor:
    """Mean hinge ranking loss: positives should beat negatives by ``margin``."""
    return (negative - positive + margin).relu().mean()


def info_nce(similarities: Tensor, temperature: float = 0.1) -> Tensor:
    """InfoNCE over a similarity matrix whose diagonal holds positives.

    ``similarities`` is (B, B): row i scores anchor i against candidate j;
    entry (i, i) is the positive pair (MICoL contrastive objective).
    """
    logits = similarities * (1.0 / temperature)
    targets = np.arange(logits.shape[0])
    return cross_entropy(logits, targets)
