"""Package entry point: ``python -m repro <command>``.

``python -m repro serve ...`` routes to the serving CLI
(:mod:`repro.serve.cli`) and ``python -m repro pipeline ...`` to the
streaming-pipeline CLI (:mod:`repro.pipeline.cli`); everything else
falls through to the experiment runner (:mod:`repro.experiments.cli`),
so ``python -m repro westclass`` and ``python -m repro.experiments.cli
westclass`` are equivalent.
"""

from __future__ import annotations

import sys


def main(argv: "list | None" = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        from repro.serve.cli import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "pipeline":
        from repro.pipeline.cli import main as pipeline_main

        return pipeline_main(argv[1:])
    if argv and argv[0] == "experiments":
        # Explicit subcommand form: ``python -m repro experiments
        # cache-prune`` etc. — same runner, verb stripped.
        argv = argv[1:]
    from repro.experiments.cli import main as experiments_main

    return experiments_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
